"""Command-line interface.

Regenerate any of the paper's figures (or run a quick demo) without
writing code::

    python -m repro fig1
    python -m repro fig2 --scale 0.5 --cores 8 16 --apps jacobi2d
    python -m repro fig3 --width 100
    python -m repro fig4 --iterations 100
    python -m repro headline
    python -m repro demo --cores 16
    python -m repro sweep --preset fig2 --workers 4
    python -m repro sweep --spec my_sweep.json -j 4 --jsonl progress.jsonl
    python -m repro sweep --preset smoke --live
    python -m repro fabric run --preset smoke --workers 2
    python -m repro fabric worker .repro-fabric/smoke
    python -m repro watch progress.jsonl --follow
    python -m repro runs list
    python -m repro runs check latest
    python -m repro sweep --preset smoke --ledger
    python -m repro sweep --preset smoke --lineage
    python -m repro explain latest
    python -m repro lineage latest
    python -m repro report
    python -m repro bench --suite micro
    python -m repro bench --compare benchmarks/trajectory/baseline.json

All commands print the regenerated table/timeline to stdout; ``--output
DIR`` additionally writes it to ``DIR/<figure>.txt``. The heavy commands
accept ``--scale`` (problem-size multiplier) and ``--iterations`` so a
laptop can spot-check at a fraction of the paper-scale cost.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.version import __version__

__all__ = ["build_parser", "main"]


def _add_sweep_source_args(p: argparse.ArgumentParser) -> None:
    """The spec-source options shared by ``sweep`` and ``fabric run``."""
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--spec", type=Path, metavar="FILE", help="sweep spec JSON file"
    )
    src.add_argument(
        "--preset",
        choices=["fig2", "abl-eps", "abl-period", "smoke"],
        help="a built-in sweep (fig2 = the full Figure 2/4 matrix)",
    )
    p.add_argument(
        "--apps",
        nargs="+",
        choices=["jacobi2d", "wave2d", "mol3d"],
        default=None,
        help="applications for the fig2 preset (default: all three)",
    )
    p.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=None,
        help="core counts for the fig2 preset (default: 8 16 24 32)",
    )
    p.add_argument(
        "--scale", type=float, default=1.0,
        help="problem-size multiplier for presets (1.0 = paper scale)",
    )
    p.add_argument(
        "--iterations", type=int, default=200,
        help="application iterations for presets",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Cloud Friendly Load Balancing for HPC Applications' "
            "(ICPP 2012): regenerate the paper's figures on the simulated "
            "testbed."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="enable diagnostic logging at this level (default: off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, iterations_default=200):
        p.add_argument(
            "--scale",
            type=float,
            default=1.0,
            help="problem-size multiplier (1.0 = paper scale)",
        )
        p.add_argument(
            "--iterations",
            type=int,
            default=iterations_default,
            help="application iterations per run",
        )
        p.add_argument(
            "--output",
            type=Path,
            default=None,
            metavar="DIR",
            help="also write the result into DIR/<figure>.txt",
        )

    p1 = sub.add_parser("fig1", help="Figure 1: interference timeline")
    add_common(p1, iterations_default=12)
    p1.add_argument("--width", type=int, default=72, help="timeline columns")

    for name, desc in (
        ("fig2", "Figure 2: timing penalties"),
        ("fig4", "Figure 4: power and energy overhead"),
        ("headline", "the paper's >=5%% reduction claim"),
    ):
        p = sub.add_parser(name, help=desc)
        add_common(p)
        p.add_argument(
            "--cores",
            type=int,
            nargs="+",
            default=None,
            help="core counts to sweep (default: 8 16 24 32)",
        )
        p.add_argument(
            "--apps",
            nargs="+",
            default=None,
            choices=["jacobi2d", "wave2d", "mol3d"],
            help="applications to evaluate (default: all three)",
        )

    p3 = sub.add_parser("fig3", help="Figure 3: dynamic rebalancing timeline")
    add_common(p3)
    p3.add_argument("--width", type=int, default=72, help="timeline columns")
    p3.add_argument(
        "--lb-period", type=int, default=4, help="LB period in iterations"
    )

    pd = sub.add_parser(
        "demo", help="quick base / noLB / LB comparison on one app"
    )
    add_common(pd, iterations_default=100)
    pd.add_argument("--cores", type=int, default=16, help="application cores")
    pd.add_argument(
        "--app",
        default="jacobi2d",
        choices=["jacobi2d", "wave2d", "mol3d"],
        help="application to run",
    )

    psw = sub.add_parser(
        "sweep",
        help="run a scenario sweep in parallel with on-disk result caching",
    )
    _add_sweep_source_args(psw)
    psw.add_argument(
        "--workers", "-j", type=int, default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    psw.add_argument(
        "--backend",
        choices=["auto", "events", "fast", "batch"],
        default="auto",
        help="simulation backend: 'events' = discrete-event engine, "
        "'fast' = vectorized fast path, 'batch' = structure-of-arrays "
        "batches over shape-homogeneous point groups (bit-identical "
        "results), 'auto' = fast where supported (default)",
    )
    psw.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="result cache location (default: .repro-cache/sweeps, "
        "or $REPRO_CACHE_DIR)",
    )
    psw.add_argument(
        "--no-cache", action="store_true",
        help="run every scenario even if a cached result exists",
    )
    psw.add_argument(
        "--jsonl", type=Path, default=None, metavar="FILE",
        help="append structured progress events to FILE as JSON lines",
    )
    psw.add_argument(
        "--audit", type=Path, default=None, metavar="DIR",
        help="run with telemetry: write per-point LB audit JSONL (and "
        "Chrome/Perfetto traces for executed points) into DIR",
    )
    psw.add_argument(
        "--ledger", action="store_true",
        help="run every point with a time-attribution ledger "
        "(repro.obs.ledger): conservation-checked summaries ride the "
        "results, the cache and the registry; inspect them with "
        "'repro explain' (incompatible with --audit)",
    )
    psw.add_argument(
        "--lineage", action="store_true",
        help="run every point with a chare-lineage recorder "
        "(repro.obs.lineage): per-chare load samples, migration "
        "residencies, imbalance metrics and counterfactual LB bounds "
        "ride the results, the cache and the registry; inspect them "
        "with 'repro lineage' (incompatible with --audit and --ledger)",
    )
    psw.add_argument(
        "--live", action="store_true",
        help="render live progress (per-worker state, throughput, ETA) "
        "to stderr while the sweep runs",
    )
    psw.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="run registry location (default: results/registry, or "
        "$REPRO_REGISTRY_DIR)",
    )
    psw.add_argument(
        "--no-registry", action="store_true",
        help="do not record this sweep in the run registry",
    )
    psw.add_argument(
        "--output", type=Path, default=None, metavar="DIR",
        help="also write the result table into DIR/sweep_<name>.txt",
    )

    pw = sub.add_parser(
        "watch",
        help="render live sweep progress from a --jsonl event file "
        "or a fabric job directory",
    )
    pw.add_argument(
        "path", type=Path, metavar="PATH",
        help="progress JSONL file written by 'sweep --jsonl', or a "
        "fabric job directory (tails every worker event stream)",
    )
    pw.add_argument(
        "--follow", "-f", action="store_true",
        help="keep tailing the file and re-render as events arrive",
    )
    pw.add_argument(
        "--interval", type=float, default=0.5, metavar="S",
        help="poll interval in seconds while following (default: 0.5)",
    )
    pw.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="stop following after S seconds without new events",
    )
    pw.add_argument(
        "--replay", action="store_true",
        help="replay the complete file and exit 1 unless it ends in "
        "sweep_done (CI assertion mode; incompatible with --follow)",
    )

    pfab = sub.add_parser(
        "fabric",
        help="distributed sweeps: sharded coordinator/worker execution "
        "over a shared job directory",
    )
    fab_sub = pfab.add_subparsers(dest="fabric_command", required=True)
    pfr = fab_sub.add_parser(
        "run",
        help="coordinate a sharded sweep across worker processes "
        "(bit-identical to 'repro sweep' for the same spec)",
    )
    _add_sweep_source_args(pfr)
    pfr.add_argument(
        "--workers", "-j", type=int, default=2,
        help="local worker processes to spawn (0 = rely on external "
        "'repro fabric worker' processes; default: 2)",
    )
    pfr.add_argument(
        "--dir", type=Path, default=None, metavar="DIR",
        help="job directory shared by coordinator and workers (default: "
        ".repro-fabric/<spec name>); re-running on a directory with "
        "partial results resumes it",
    )
    shard_group = pfr.add_mutually_exclusive_group()
    shard_group.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the sweep into N shards (default: 4 per worker)",
    )
    shard_group.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="target points per shard instead of a shard count",
    )
    pfr.add_argument(
        "--backend",
        choices=["auto", "events", "fast", "batch"],
        default="auto",
        help="simulation backend for executed points (results are "
        "bit-identical across backends)",
    )
    pfr.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="shared result cache (default: .repro-cache/sweeps, or "
        "$REPRO_CACHE_DIR); workers publish completed points here",
    )
    pfr.add_argument(
        "--no-cache", action="store_true",
        help="run every scenario even if a cached result exists",
    )
    pfr.add_argument(
        "--jsonl", type=Path, default=None, metavar="FILE",
        help="append the merged multi-worker progress stream to FILE",
    )
    pfr.add_argument(
        "--live", action="store_true",
        help="render live progress (per-worker state, throughput, ETA) "
        "to stderr while the sweep runs",
    )
    pfr.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="run registry location (default: results/registry, or "
        "$REPRO_REGISTRY_DIR)",
    )
    pfr.add_argument(
        "--no-registry", action="store_true",
        help="do not record this sweep in the run registry",
    )
    pfr.add_argument(
        "--fault", action="append", default=None, metavar="SPEC",
        help="inject a deterministic worker fault: "
        "kind:worker:shard_ordinal[:point_offset] with kind in "
        "{kill,hang,dup}, e.g. kill:w0:0:1 (repeatable)",
    )
    pfr.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="derive a random-but-reproducible fault plan from SEED "
        "instead of explicit --fault specs",
    )
    pfr.add_argument(
        "--lease-timeout", type=float, default=5.0, metavar="S",
        help="seconds without a heartbeat before a shard lease is "
        "considered dead and stolen (default: 5)",
    )
    pfr.add_argument(
        "--heartbeat", type=float, default=0.5, metavar="S",
        help="worker lease heartbeat interval (default: 0.5)",
    )
    pfr.add_argument(
        "--poll", type=float, default=0.05, metavar="S",
        help="coordinator/worker poll interval (default: 0.05)",
    )
    pfr.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="hard deadline for the whole run; on expiry the job "
        "directory is left resumable (default: 600)",
    )
    pfr.add_argument(
        "--no-respawn", action="store_true",
        help="never spawn replacement workers when all die; fail fast "
        "into a resumable job directory",
    )
    pfr.add_argument(
        "--no-trace", action="store_true",
        help="disable the flight recorder (no span timestamps, no "
        "coordinator.jsonl mirror); sweep results are bit-identical "
        "either way",
    )
    pfr.add_argument(
        "--output", type=Path, default=None, metavar="DIR",
        help="also write the result table into DIR/sweep_<name>.txt",
    )
    pfw = fab_sub.add_parser(
        "worker",
        help="join an existing fabric job directory as one worker process",
    )
    pfw.add_argument(
        "dir", type=Path, metavar="DIR",
        help="job directory published by 'repro fabric run'",
    )
    pfw.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable worker identity (default: w<pid>)",
    )
    pft = fab_sub.add_parser(
        "trace",
        help="assemble the flight-recorder spans of a fabric job into "
        "one causal timeline with health metrics and critical path",
    )
    pft.add_argument(
        "dir", type=Path, metavar="DIR",
        help="job directory written by 'repro fabric run'",
    )
    pft.add_argument(
        "--perfetto", type=Path, default=None, metavar="FILE",
        help="also export a Chrome/Perfetto trace (one track per "
        "worker) to FILE",
    )
    pft.add_argument(
        "--json", action="store_true",
        help="emit the assembled trace as JSON instead of text",
    )
    pfs = fab_sub.add_parser(
        "status",
        help="snapshot a fabric job directory: queue depth, leases, "
        "worker liveness (read-only, safe while the job runs)",
    )
    pfs.add_argument(
        "dir", type=Path, metavar="DIR",
        help="job directory written by 'repro fabric run'",
    )
    pfs.add_argument(
        "--json", action="store_true",
        help="emit the snapshot as JSON instead of text",
    )

    prep = sub.add_parser(
        "report",
        help="write the self-contained HTML observability dashboard",
    )
    prep.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="run registry location (default: results/registry, or "
        "$REPRO_REGISTRY_DIR)",
    )
    prep.add_argument(
        "--trajectory-dir", type=Path, default=Path("benchmarks/trajectory"),
        metavar="DIR",
        help="bench trajectory directory to trend "
        "(default: benchmarks/trajectory)",
    )
    prep.add_argument(
        "--output", type=Path, default=Path("results/report.html"),
        metavar="FILE",
        help="where to write the HTML (default: results/report.html)",
    )

    pruns = sub.add_parser("runs", help="query the cross-run registry")
    pruns.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="run registry location (default: results/registry, or "
        "$REPRO_REGISTRY_DIR)",
    )
    runs_sub = pruns.add_subparsers(dest="runs_command", required=True)
    prl = runs_sub.add_parser("list", help="list every registered run")
    prl.add_argument(
        "--json", action="store_true",
        help="emit the index lines as JSON instead of a table",
    )
    prs = runs_sub.add_parser("show", help="print one run record as JSON")
    prs.add_argument(
        "ref", metavar="REF",
        help="run id, unique prefix, 'latest', or 'latest:<name>'",
    )
    prs.add_argument(
        "--json", action="store_true",
        help="emit the record as pure JSON (no stderr summaries), "
        "for parity with 'runs list --json'",
    )
    prd = runs_sub.add_parser("diff", help="compare two runs point by point")
    prd.add_argument("ref_a", metavar="REF_A", help="baseline run ref")
    prd.add_argument("ref_b", metavar="REF_B", help="candidate run ref")
    prd.add_argument(
        "--json", action="store_true",
        help="emit the structured diff as JSON instead of text",
    )
    prc = runs_sub.add_parser(
        "check",
        help="run the anomaly detectors on a run; exit 1 on error findings",
    )
    prc.add_argument(
        "ref", nargs="?", default="latest", metavar="REF",
        help="run to check (default: latest)",
    )
    prc.add_argument(
        "--trajectory-dir", type=Path, default=None, metavar="DIR",
        help="also check the bench trajectory in DIR for regressions",
    )
    prc.add_argument(
        "--json", action="store_true",
        help="emit findings as JSON instead of text",
    )

    pex = sub.add_parser(
        "explain",
        help="per-core time-attribution waterfall (compute / stolen / "
        "overhead / idle + energy split) for a registered run",
    )
    pex.add_argument(
        "ref", nargs="?", default="latest", metavar="REF",
        help="run id, unique prefix, 'latest', or 'latest:<name>' "
        "(default: latest)",
    )
    pex.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="run registry location (default: results/registry, or "
        "$REPRO_REGISTRY_DIR)",
    )
    pex.add_argument(
        "--point", default=None, metavar="SUBSTR",
        help="only explain points whose label contains SUBSTR "
        "(default: every point of the run)",
    )
    pex.add_argument(
        "--top", type=int, default=8, metavar="N",
        help="top chare contributors listed per point (default: 8)",
    )
    pex.add_argument(
        "--backend",
        choices=["auto", "events", "fast", "batch"],
        default="auto",
        help="backend used when a point's ledger must be recomputed "
        "(runs recorded without 'sweep --ledger'; ledgers are "
        "bit-identical across backends)",
    )
    pex.add_argument(
        "--json", action="store_true",
        help="emit the ledger + energy payload as JSON instead of text",
    )
    pex.add_argument(
        "--perfetto", type=Path, default=None, metavar="DIR",
        help="also write one Chrome/Perfetto trace per point (stacked "
        "per-iteration attribution counter track) into DIR",
    )
    pex.add_argument(
        "--output", type=Path, default=None, metavar="DIR",
        help="also write the waterfall into DIR/explain.txt "
        "(DIR/explain.json with --json)",
    )

    pln = sub.add_parser(
        "lineage",
        help="per-chare load lineage: migration flow, imbalance metrics "
        "and counterfactual LB bounds for a registered run",
    )
    pln.add_argument(
        "ref", nargs="?", default="latest", metavar="REF",
        help="run id, unique prefix, 'latest', or 'latest:<name>' "
        "(default: latest)",
    )
    pln.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="run registry location (default: results/registry, or "
        "$REPRO_REGISTRY_DIR)",
    )
    pln.add_argument(
        "--point", default=None, metavar="SUBSTR",
        help="only show points whose label contains SUBSTR "
        "(default: every point of the run)",
    )
    pln.add_argument(
        "--backend",
        choices=["auto", "events", "fast", "batch"],
        default="auto",
        help="backend used when a point's lineage must be recomputed "
        "(runs recorded without 'sweep --lineage'; payloads are "
        "bit-identical across backends)",
    )
    ln_fmt = pln.add_mutually_exclusive_group()
    ln_fmt.add_argument(
        "--json", action="store_true",
        help="emit the lineage payloads as JSON instead of text",
    )
    ln_fmt.add_argument(
        "--dot", action="store_true",
        help="emit the migration-flow graph(s) as GraphViz DOT "
        "instead of text",
    )
    pln.add_argument(
        "--perfetto", type=Path, default=None, metavar="DIR",
        help="also write one Chrome/Perfetto trace per point (λ/CoV/"
        "Gini + per-core load counter tracks) into DIR",
    )
    pln.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every LB step is sane (oracle bound <= "
        "observed <= no-LB replay) — the CI counterfactual gate",
    )
    pln.add_argument(
        "--output", type=Path, default=None, metavar="DIR",
        help="also write the result into DIR/lineage.txt "
        "(DIR/lineage.json with --json, DIR/lineage.dot with --dot)",
    )

    pb = sub.add_parser(
        "bench",
        help="run the curated perf suite; write/compare BENCH_*.json",
    )
    pb.add_argument(
        "--suite",
        choices=["micro", "macro", "all"],
        default="all",
        help="which suites to run (default: all)",
    )
    pb.add_argument(
        "--repeats", type=int, default=5,
        help="measured iterations per metric (default: 5)",
    )
    pb.add_argument(
        "--warmup", type=int, default=2,
        help="discarded warmup iterations per metric (default: 2)",
    )
    pb.add_argument(
        "--filter", default=None, metavar="SUBSTR",
        help="only run metrics whose name contains SUBSTR",
    )
    pb.add_argument(
        "--trajectory-dir", type=Path, default=Path("benchmarks/trajectory"),
        metavar="DIR",
        help="where BENCH_<git-sha>.json entries accumulate "
        "(default: benchmarks/trajectory)",
    )
    pb.add_argument(
        "--no-save", action="store_true",
        help="do not append this run to the trajectory directory",
    )
    pb.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="run registry location for saved runs (default: "
        "results/registry, or $REPRO_REGISTRY_DIR)",
    )
    pb.add_argument(
        "--no-registry", action="store_true",
        help="do not record this bench run in the run registry",
    )
    pb.add_argument(
        "--compare", type=Path, default=None, metavar="BASELINE",
        help="compare against a baseline BENCH_*.json; exit 1 on regression",
    )
    pb.add_argument(
        "--replay", type=Path, default=None, metavar="CURRENT",
        help="compare an existing BENCH_*.json instead of running the suite "
        "(requires --compare)",
    )
    pb.add_argument(
        "--rel-threshold", type=float, default=None, metavar="FRAC",
        help="relative noise floor for the regression gate (default: 0.25)",
    )
    pb.add_argument(
        "--iqr-factor", type=float, default=None, metavar="X",
        help="how many relative IQRs widen the tolerance band (default: 4)",
    )
    pb.add_argument(
        "--allow-env-mismatch", action="store_true",
        help="compare results from different machines anyway",
    )
    pb.add_argument(
        "--profile", type=Path, default=None, metavar="DIR",
        help="additionally run one profiled smoke scenario and write "
        "profile.json + profile.trace.json into DIR",
    )
    pb.add_argument(
        "--json", action="store_true",
        help="emit the result (and comparison) as JSON instead of tables",
    )
    pb.add_argument(
        "--output", type=Path, default=None, metavar="DIR",
        help="also write the report into DIR/bench.txt",
    )

    pin = sub.add_parser(
        "inspect",
        help="analyse LB audit trails written by 'sweep --audit'",
    )
    pin.add_argument(
        "path", type=Path, metavar="DIR_OR_FILE",
        help="audit directory (or one .jsonl file) to analyse",
    )
    pin.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of tables",
    )
    pin.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many top migrations to list (default: 10)",
    )
    pin.add_argument(
        "--output", type=Path, default=None, metavar="DIR",
        help="also write the report into DIR/inspect.txt",
    )
    return parser


def _emit(text: str, name: str, output: Optional[Path]) -> None:
    print(text)
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        path = output / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"[written to {path}]", file=sys.stderr)


def _cmd_fig1(args) -> int:
    from repro.experiments import fig1

    res = fig1(scale=args.scale, iterations=args.iterations, width=args.width)
    _emit(res.text(), "fig1", args.output)
    return 0


def _cmd_fig3(args) -> int:
    from repro.experiments import fig3

    res = fig3(scale=args.scale, lb_period=args.lb_period, width=args.width)
    _emit(res.text(), "fig3", args.output)
    return 0


def _matrix(args):
    from repro.experiments.figures import PAPER_CORE_COUNTS, run_matrix

    return run_matrix(
        apps=args.apps,
        core_counts=tuple(args.cores) if args.cores else PAPER_CORE_COUNTS,
        scale=args.scale,
        iterations=args.iterations,
    )


def _cmd_fig2(args) -> int:
    from repro.experiments import fig2

    res = fig2(matrix=_matrix(args))
    _emit(res.text(), "fig2", args.output)
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments import fig4

    res = fig4(matrix=_matrix(args))
    _emit(res.text(), "fig4", args.output)
    return 0


def _cmd_headline(args) -> int:
    from repro.experiments import format_table, headline_reductions
    from repro.experiments.figures import PAPER_CLAIM_PERCENT

    rows = headline_reductions(_matrix(args))
    text = format_table(
        ["app", "min penalty reduction %", "min energy reduction %", "claim met"],
        [
            (r.app_name, r.min_penalty_reduction, r.min_energy_reduction, r.meets_claim)
            for r in rows
        ],
        title=f"Worst-case reductions (paper claims >= {PAPER_CLAIM_PERCENT:.0f}%)",
    )
    _emit(text, "headline", args.output)
    return 0 if all(r.meets_claim for r in rows) else 1


def _cmd_demo(args) -> int:
    from repro.experiments import (
        format_table,
        percent_increase,
        run_case,
    )

    case = run_case(
        args.app, args.cores, scale=args.scale, iterations=args.iterations
    )
    rows = [
        ("alone (base)", case.base.app_time, 0.0, case.base.avg_power_w),
        ("interfered, noLB", case.nolb.app_time, case.penalty_nolb, case.power_nolb_w),
        ("interfered, LB", case.lb.app_time, case.penalty_lb, case.power_lb_w),
    ]
    text = format_table(
        ["run", "time (s)", "penalty %", "avg power W"],
        rows,
        title=f"{args.app} on {args.cores} cores, 2-core Wave2D interfering",
        float_fmt="{:.2f}",
    )
    _emit(text, "demo", args.output)
    return 0


def _sweep_spec_from_args(args):
    from repro.experiments.sweep import SweepSpec
    from repro.experiments.sweep_presets import (
        ablation_epsilon_spec,
        ablation_period_spec,
        fig2_sweep_spec,
        smoke_spec,
    )

    if args.spec is not None:
        return SweepSpec.from_file(args.spec)
    if args.preset == "fig2":
        return fig2_sweep_spec(
            apps=args.apps,
            core_counts=args.cores,
            scale=args.scale,
            iterations=args.iterations,
        )
    if args.preset == "abl-eps":
        return ablation_epsilon_spec(scale=args.scale)
    if args.preset == "abl-period":
        return ablation_period_spec(scale=args.scale)
    return smoke_spec()


def _cmd_sweep(args) -> int:
    from repro.experiments.cache import ResultCache, default_cache_dir
    from repro.experiments.progress import EventLog
    from repro.experiments.sweep import run_sweep
    from repro.experiments.sweep_presets import (
        fig2_table_from_sweep,
        fig4_table_from_sweep,
    )

    try:
        spec = _sweep_spec_from_args(args)
        spec.expand()  # validate parameters before touching cache/pool
    except (ValueError, OSError) as exc:
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(
            f"repro sweep: error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.ledger and args.audit is not None:
        print(
            "repro sweep: error: --ledger and --audit are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2
    if args.lineage and args.audit is not None:
        print(
            "repro sweep: error: --lineage and --audit are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2
    if args.lineage and args.ledger:
        print(
            "repro sweep: error: --lineage and --ledger are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2
    if args.backend == "batch":
        from repro.experiments.sweep import build_scenario
        from repro.sim.batch import batch_group_indices

        batch_points = spec.expand()
        groups = batch_group_indices(
            [build_scenario(p.params) for p in batch_points]
        )
        if len(batch_points) > 1 and all(len(g) == 1 for g in groups):
            print(
                f"repro sweep: error: sweep '{spec.name}' is shape-heterogeneous "
                "(no two points share a batchable shape), so --backend batch "
                "degrades to per-point execution — use --backend fast",
                file=sys.stderr,
            )
            return 2
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())

    registry = None
    if not args.no_registry:
        from repro.obs.registry import RunRegistry, default_registry_dir

        registry = RunRegistry(args.registry or default_registry_dir())

    on_event = None
    if args.live:
        from repro.obs.watch import LiveWatch

        on_event = LiveWatch(sys.stderr).on_event

    jsonl_stream = None
    try:
        if args.jsonl is not None:
            args.jsonl.parent.mkdir(parents=True, exist_ok=True)
            jsonl_stream = open(args.jsonl, "a")
        log = EventLog(stream=jsonl_stream, on_event=on_event)
        result = run_sweep(
            spec,
            workers=args.workers,
            cache=cache,
            log=log,
            audit_dir=args.audit,
            registry=registry,
            backend=args.backend,
            ledger=args.ledger,
            lineage=args.lineage,
        )
    finally:
        if jsonl_stream is not None:
            jsonl_stream.close()

    for event in log.of_type("run_registered"):
        print(f"[registered as run {event['run_id']}]", file=sys.stderr)

    text = result.text()
    if args.preset == "fig2" or (args.spec and spec.name == "fig2"):
        text += "\n\n" + fig2_table_from_sweep(result)
        text += "\n\n" + fig4_table_from_sweep(result)
    _emit(text, f"sweep_{spec.name}", args.output)
    return 0


def _cmd_fabric_worker(args) -> int:
    from repro.experiments.fabric import worker_main

    try:
        return worker_main(str(args.dir), args.worker_id)
    except (ValueError, OSError) as exc:
        print(f"repro fabric worker: error: {exc}", file=sys.stderr)
        return 2


def _cmd_fabric_run(args) -> int:
    from repro.experiments.cache import ResultCache, default_cache_dir
    from repro.experiments.fabric import (
        FabricIncomplete,
        parse_fault,
        seeded_fault_plan,
    )
    from repro.experiments.progress import EventLog
    from repro.experiments.sweep import run_sweep
    from repro.experiments.sweep_presets import (
        fig2_table_from_sweep,
        fig4_table_from_sweep,
    )

    try:
        spec = _sweep_spec_from_args(args)
        spec.expand()  # validate parameters before touching cache/workers
        faults = tuple(parse_fault(f) for f in (args.fault or ()))
    except (ValueError, OSError) as exc:
        print(f"repro fabric run: error: {exc}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(
            f"repro fabric run: error: --workers must be >= 0, "
            f"got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.fault_seed is not None:
        faults += seeded_fault_plan(
            args.fault_seed,
            [f"w{i}" for i in range(args.workers)],
            shard_size=args.shard_size or 1,
        )

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())

    registry = None
    if not args.no_registry:
        from repro.obs.registry import RunRegistry, default_registry_dir

        registry = RunRegistry(args.registry or default_registry_dir())

    on_event = None
    if args.live:
        from repro.obs.watch import LiveWatch

        on_event = LiveWatch(sys.stderr).on_event

    jsonl_stream = None
    try:
        if args.jsonl is not None:
            args.jsonl.parent.mkdir(parents=True, exist_ok=True)
            jsonl_stream = open(args.jsonl, "a")
        log = EventLog(stream=jsonl_stream, on_event=on_event)
        result = run_sweep(
            spec,
            workers=args.workers,
            cache=cache,
            log=log,
            registry=registry,
            backend=args.backend,
            driver="fabric",
            fabric_dir=args.dir,
            fabric_options={
                "num_shards": args.shards,
                "shard_size": args.shard_size,
                "faults": faults,
                "heartbeat_s": args.heartbeat,
                "lease_timeout_s": args.lease_timeout,
                "poll_s": args.poll,
                "worker_poll_s": args.poll,
                "respawn": not args.no_respawn,
                "timeout_s": args.timeout,
                "trace": not args.no_trace,
            },
        )
    except FabricIncomplete as exc:
        print(f"repro fabric run: error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"repro fabric run: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if jsonl_stream is not None:
            jsonl_stream.close()

    for event in log.of_type("run_registered"):
        print(f"[registered as run {event['run_id']}]", file=sys.stderr)

    text = result.text()
    if args.preset == "fig2" or (args.spec and spec.name == "fig2"):
        text += "\n\n" + fig2_table_from_sweep(result)
        text += "\n\n" + fig4_table_from_sweep(result)
    _emit(text, f"sweep_{spec.name}", args.output)
    return 0


def _cmd_fabric_trace(args) -> int:
    import json

    from repro.obs.fabtrace import (
        assemble_trace,
        export_perfetto,
        format_trace_text,
    )

    try:
        trace = assemble_trace(args.dir)
    except (ValueError, OSError) as exc:
        print(f"repro fabric trace: error: {exc}", file=sys.stderr)
        return 2
    if args.perfetto is not None:
        args.perfetto.parent.mkdir(parents=True, exist_ok=True)
        n = export_perfetto(trace, args.perfetto)
        print(
            f"[perfetto trace: {n} event(s) -> {args.perfetto}]",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(trace.to_dict(), indent=1, sort_keys=True))
    else:
        print(format_trace_text(trace))
    return 1 if trace.problems else 0


def _cmd_fabric_status(args) -> int:
    import json

    from repro.obs.fabtrace import fabric_status, format_status_text

    try:
        status = fabric_status(args.dir)
    except (ValueError, OSError) as exc:
        print(f"repro fabric status: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=1, sort_keys=True))
    else:
        print(format_status_text(status))
    return 0


def _cmd_fabric(args) -> int:
    if args.fabric_command == "worker":
        return _cmd_fabric_worker(args)
    if args.fabric_command == "trace":
        return _cmd_fabric_trace(args)
    if args.fabric_command == "status":
        return _cmd_fabric_status(args)
    return _cmd_fabric_run(args)


def _cmd_inspect(args) -> int:
    import json

    from repro.telemetry.inspect import format_inspect_text, inspect_audit

    if args.top < 0:
        print(
            f"repro inspect: error: --top must be >= 0, got {args.top}",
            file=sys.stderr,
        )
        return 2
    try:
        report = inspect_audit(args.path, top=args.top)
    except (ValueError, OSError) as exc:
        # missing dir, empty dir, unreadable files, malformed JSONL —
        # all are one clean line on stderr, never a traceback
        print(f"repro inspect: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        text = json.dumps(report, indent=1, sort_keys=True)
    else:
        text = format_inspect_text(report)
    _emit(text, "inspect", args.output)
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.perf import (
        DEFAULT_IQR_FACTOR,
        DEFAULT_REL_THRESHOLD,
        SUITES,
        bench_filename,
        compare_bench,
        format_bench_text,
        format_compare_text,
        load_bench,
        run_bench,
        save_bench,
    )

    suites = SUITES if args.suite == "all" else (args.suite,)
    if args.replay is not None and args.compare is None:
        print(
            "repro bench: error: --replay requires --compare", file=sys.stderr
        )
        return 2

    def progress(name: str, i: int, total: int) -> None:
        print(f"[{i + 1}/{total}] {name}", file=sys.stderr)

    try:
        if args.replay is not None:
            current = load_bench(args.replay)
        else:
            current = run_bench(
                suites=suites,
                repeats=args.repeats,
                warmup=args.warmup,
                name_filter=args.filter,
                progress=None if args.json else progress,
            )
    except (ValueError, OSError) as exc:
        print(f"repro bench: error: {exc}", file=sys.stderr)
        return 2

    saved: Optional[Path] = None
    if args.replay is None and not args.no_save:
        saved = save_bench(current, args.trajectory_dir / bench_filename(current))
        if not args.no_registry:
            from repro.obs.registry import RunRegistry, default_registry_dir

            registry = RunRegistry(args.registry or default_registry_dir())
            record = registry.ingest_bench(
                current, artifacts={"trajectory_entry": saved}
            )
            print(
                f"[registered as run {record['run_id']}]", file=sys.stderr
            )

    report = None
    if args.compare is not None:
        try:
            baseline = load_bench(args.compare)
            report = compare_bench(
                baseline,
                current,
                rel_threshold=(
                    args.rel_threshold
                    if args.rel_threshold is not None
                    else DEFAULT_REL_THRESHOLD
                ),
                iqr_factor=(
                    args.iqr_factor
                    if args.iqr_factor is not None
                    else DEFAULT_IQR_FACTOR
                ),
                allow_env_mismatch=args.allow_env_mismatch,
            )
        except (ValueError, OSError) as exc:
            print(f"repro bench: error: {exc}", file=sys.stderr)
            return 2

    if args.profile is not None:
        from repro.experiments.sweep import run_point_audited
        from repro.projections.export import write_chrome_trace

        _, records, trace, profile = run_point_audited(
            {"app": "jacobi2d", "scale": 0.05, "iterations": 10, "cores": 4,
             "bg": True, "balancer": "refine-vm"}
        )
        args.profile.mkdir(parents=True, exist_ok=True)
        (args.profile / "profile.json").write_text(
            json.dumps(profile, indent=1, sort_keys=True) + "\n"
        )
        write_chrome_trace(
            trace,
            str(args.profile / "profile.trace.json"),
            job_name="profiled-smoke",
            audit=records,
            profile=profile,
        )
        print(f"[profile written to {args.profile}]", file=sys.stderr)

    if args.json:
        payload: dict = {"result": current}
        if report is not None:
            payload["comparison"] = report.to_dict()
        text = json.dumps(payload, indent=1, sort_keys=True)
    else:
        text = format_bench_text(current)
        if report is not None:
            text += "\n\n" + format_compare_text(report)
    _emit(text, "bench", args.output)
    if saved is not None:
        print(f"[trajectory entry: {saved}]", file=sys.stderr)
    return 0 if report is None or report.ok else 1


def _cmd_watch(args) -> int:
    from repro.obs.watch import watch_file

    if args.interval <= 0:
        print(
            f"repro watch: error: --interval must be > 0, got {args.interval}",
            file=sys.stderr,
        )
        return 2
    if args.replay and args.follow:
        print(
            "repro watch: error: --replay is incompatible with --follow",
            file=sys.stderr,
        )
        return 2
    try:
        return watch_file(
            args.path,
            follow=args.follow,
            interval=args.interval,
            timeout_s=args.timeout,
            require_finished=args.replay,
        )
    except (ValueError, OSError) as exc:
        # missing file/directory, unreadable events — one clean line on
        # stderr, never a traceback (matches 'repro inspect')
        print(f"repro watch: error: {exc}", file=sys.stderr)
        return 1


def _cmd_report(args) -> int:
    from repro.obs.registry import default_registry_dir
    from repro.obs.report import write_report

    try:
        data = write_report(
            args.output,
            args.registry or default_registry_dir(),
            trajectory_dir=args.trajectory_dir,
        )
    except (ValueError, OSError) as exc:
        print(f"repro report: error: {exc}", file=sys.stderr)
        return 2
    errors = sum(1 for f in data["findings"] if f["severity"] == "error")
    print(
        f"[report written to {args.output}: {len(data['runs'])} run(s), "
        f"{len(data['findings'])} finding(s), {errors} error(s)]"
    )
    return 0


def _format_diff_text(diff: dict) -> str:
    lines = [f"diff {diff['a']} .. {diff['b']}"]
    for label in diff["only_a"]:
        lines.append(f"  - {label} (only in {diff['a']})")
    for label in diff["only_b"]:
        lines.append(f"  + {label} (only in {diff['b']})")
    for label, deltas in diff["changed"].items():
        lines.append(f"  ~ {label}")
        for field, (va, vb, rel) in deltas.items():
            rel_txt = f" ({rel * 100.0:+.1f}%)" if rel is not None else ""
            lines.append(f"      {field}: {va} -> {vb}{rel_txt}")
    lines.append(
        f"  {len(diff['identical'])} identical point(s), "
        f"{len(diff['changed'])} changed"
    )
    return "\n".join(lines)


def _cmd_runs(args) -> int:
    import json

    from repro.experiments.tables import format_table
    from repro.obs.anomaly import check_bench_trajectory, check_run, has_errors
    from repro.obs.registry import RunRegistry, default_registry_dir, diff_runs

    registry = RunRegistry(args.registry or default_registry_dir())

    if args.runs_command == "list":
        runs = registry.list()
        if args.json:
            print(json.dumps(runs, indent=1, sort_keys=True))
            return 0
        if not runs:
            print(f"registry at {registry.root} is empty")
            return 0
        print(
            format_table(
                ["run id", "kind", "name", "created (UTC)", "git sha", "points"],
                [
                    (
                        r["run_id"],
                        r.get("kind", "?"),
                        r.get("name", "?"),
                        r.get("created_utc", ""),
                        str(r.get("git_sha", ""))[:12],
                        r.get("points", 0),
                    )
                    for r in runs
                ],
                title=f"{len(runs)} registered run(s) in {registry.root}",
            )
        )
        return 0

    try:
        if args.runs_command == "show":
            record = registry.load(args.ref)
            print(json.dumps(record, indent=1, sort_keys=True))
            fabric = record.get("fabric")
            if isinstance(fabric, dict) and not args.json:
                # human-readable summary on stderr; stdout stays pure JSON
                print(
                    "[fabric: {w} worker(s), {s} shard(s), "
                    "{st} steal(s), {r} respawn(s), {d} death(s) "
                    "in {dir}]".format(
                        w=len(fabric.get("workers_seen", [])),
                        s=fabric.get("shards", "?"),
                        st=fabric.get("steals", 0),
                        r=fabric.get("respawns", 0),
                        d=fabric.get("worker_deaths", 0),
                        dir=fabric.get("fabric_dir", "?"),
                    ),
                    file=sys.stderr,
                )
            return 0

        if args.runs_command == "diff":
            diff = diff_runs(registry.load(args.ref_a), registry.load(args.ref_b))
            if args.json:
                print(json.dumps(diff, indent=1, sort_keys=True))
            else:
                print(_format_diff_text(diff))
            return 0

        # check
        record = registry.load(args.ref)
        history = registry.history(
            record["name"],
            kind=record.get("kind", "sweep"),
            before=record["run_id"],
        )
        findings = check_run(record, history)
        if args.trajectory_dir is not None:
            from repro.obs.report import _load_trajectory

            findings = findings + check_bench_trajectory(
                _load_trajectory(args.trajectory_dir)
            )
    except (ValueError, OSError) as exc:
        print(f"repro runs: error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=1))
    elif not findings:
        print(f"ok: no findings for run {record['run_id']}")
    else:
        for f in findings:
            print(f"{f.severity.upper():8s} [{f.rule}] {f.subject}: {f.message}")
        errors = sum(1 for f in findings if f.severity == "error")
        print(
            f"{len(findings)} finding(s) for run {record['run_id']} "
            f"({errors} error(s))"
        )
    return 1 if has_errors(findings) else 0


def _cmd_explain(args) -> int:
    import json

    from repro.experiments.sweep import build_scenario, run_point_ledgered
    from repro.obs.ledger import format_ledger_text
    from repro.obs.registry import RunRegistry, default_registry_dir
    from repro.power.meter import decompose_energy
    from repro.power.model import PowerModel

    if args.top < 0:
        print(
            f"repro explain: error: --top must be >= 0, got {args.top}",
            file=sys.stderr,
        )
        return 2
    registry = RunRegistry(args.registry or default_registry_dir())
    try:
        record = registry.load(args.ref)
    except (ValueError, OSError) as exc:
        print(f"repro explain: error: {exc}", file=sys.stderr)
        return 2
    if record.get("kind") != "sweep":
        print(
            f"repro explain: error: run {record['run_id']} is a "
            f"{record.get('kind', '?')} run; only sweep runs carry "
            "per-point ledgers",
            file=sys.stderr,
        )
        return 2
    points = [
        p
        for p in record.get("points", ())
        if args.point is None or args.point in p.get("label", "")
    ]
    if not points:
        print(
            f"repro explain: error: no point of run {record['run_id']} "
            f"matches {args.point!r}",
            file=sys.stderr,
        )
        return 2

    sections: List[str] = []
    payload: List[dict] = []
    violations: List[str] = []
    for p in points:
        ledger = p.get("ledger")
        recomputed = ledger is None
        if recomputed:
            # the sweep ran without --ledger: re-execute this point with
            # one attached (identical summary, bit-identical ledger on
            # either backend)
            try:
                _, ledger = run_point_ledgered(
                    p["params"], backend=args.backend
                )
            except (ValueError, KeyError) as exc:
                print(f"repro explain: error: {exc}", file=sys.stderr)
                return 2
        scenario = build_scenario(p["params"])
        nodes = len(
            {cid // scenario.cores_per_node for cid in scenario.app_core_ids}
        )
        summary = p["summary"]
        energy = decompose_energy(
            PowerModel(cores_per_node=scenario.cores_per_node),
            duration_s=summary["app_time"],
            busy_core_seconds=summary["busy_core_seconds"],
            nodes=nodes,
            busy_by_bucket=ledger["busy"],
        )
        if not ledger["conserved"]:
            violations.append(
                f"{p['label']}: conservation violated "
                f"(residual {ledger['residual_s']} s)"
            )
        if energy["energy_j"] != summary["energy_j"]:
            violations.append(
                f"{p['label']}: energy decomposition does not reconcile "
                f"({energy['energy_j']} != {summary['energy_j']} J)"
            )
        sections.append(
            format_ledger_text(
                ledger, label=p["label"], energy=energy, top=args.top
            )
        )
        payload.append(
            {
                "label": p["label"],
                "params": p["params"],
                "recomputed": recomputed,
                "ledger": ledger,
                "energy": energy,
            }
        )
        if args.perfetto is not None:
            from repro.projections.export import write_chrome_trace
            from repro.runtime.tracing import TraceLog

            args.perfetto.mkdir(parents=True, exist_ok=True)
            write_chrome_trace(
                TraceLog(enabled=False),
                str(args.perfetto / f"{p['label']}.ledger.trace.json"),
                job_name=p["label"],
                ledger=ledger,
            )

    doc = {
        "run_id": record["run_id"],
        "name": record.get("name"),
        "points": payload,
        "violations": violations,
    }
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        if args.output is not None:
            from repro.telemetry import write_json_artifact

            args.output.mkdir(parents=True, exist_ok=True)
            path = write_json_artifact(doc, args.output / "explain.json")
            print(f"[written to {path}]", file=sys.stderr)
    else:
        text = f"run {record['run_id']} ({record.get('name')})\n\n"
        text += "\n\n".join(sections)
        _emit(text, "explain", args.output)
    for v in violations:
        print(f"repro explain: VIOLATION: {v}", file=sys.stderr)
    return 1 if violations else 0


def _cmd_lineage(args) -> int:
    import json

    from repro.experiments.sweep import run_point_lineaged
    from repro.obs.lineage import format_lineage_text, lineage_dot
    from repro.obs.registry import RunRegistry, default_registry_dir

    registry = RunRegistry(args.registry or default_registry_dir())
    try:
        record = registry.load(args.ref)
    except (ValueError, OSError) as exc:
        print(f"repro lineage: error: {exc}", file=sys.stderr)
        return 2
    if record.get("kind") != "sweep":
        print(
            f"repro lineage: error: run {record['run_id']} is a "
            f"{record.get('kind', '?')} run; only sweep runs carry "
            "per-point lineage",
            file=sys.stderr,
        )
        return 2
    points = [
        p
        for p in record.get("points", ())
        if args.point is None or args.point in p.get("label", "")
    ]
    if not points:
        print(
            f"repro lineage: error: no point of run {record['run_id']} "
            f"matches {args.point!r}",
            file=sys.stderr,
        )
        return 2

    sections: List[str] = []
    dots: List[str] = []
    payload: List[dict] = []
    violations: List[str] = []
    insane: List[str] = []
    for p in points:
        lineage = p.get("lineage")
        recomputed = lineage is None
        if recomputed:
            # the sweep ran without --lineage: re-execute this point
            # with a recorder attached (identical summary, bit-identical
            # lineage payload on either backend)
            try:
                _, lineage = run_point_lineaged(
                    p["params"], backend=args.backend
                )
            except (ValueError, KeyError) as exc:
                print(f"repro lineage: error: {exc}", file=sys.stderr)
                return 2
        for step in lineage["steps"]:
            # oracle <= observed holds by construction (mean <= max);
            # a violation is a library bug, not a bad balancer
            if step["oracle_max_s"] > step["observed_max_s"]:
                violations.append(
                    f"{p['label']} step {step['step']}: oracle bound "
                    f"{step['oracle_max_s']} > observed "
                    f"{step['observed_max_s']}"
                )
            if not step["sane"]:
                insane.append(
                    f"{p['label']} step {step['step']}: observed "
                    f"{step['observed_max_s']} > no-LB replay "
                    f"{step['nolb_max_s']}"
                )
        sections.append(format_lineage_text(lineage, label=p["label"]))
        dots.append(lineage_dot(lineage))
        payload.append(
            {
                "label": p["label"],
                "params": p["params"],
                "recomputed": recomputed,
                "lineage": lineage,
            }
        )
        if args.perfetto is not None:
            from repro.projections.export import write_chrome_trace
            from repro.runtime.tracing import TraceLog

            args.perfetto.mkdir(parents=True, exist_ok=True)
            write_chrome_trace(
                TraceLog(enabled=False),
                str(args.perfetto / f"{p['label']}.lineage.trace.json"),
                job_name=p["label"],
                lineage=lineage,
            )

    doc = {
        "run_id": record["run_id"],
        "name": record.get("name"),
        "points": payload,
        "violations": violations,
        "insane_steps": insane,
    }
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        if args.output is not None:
            from repro.telemetry import write_json_artifact

            args.output.mkdir(parents=True, exist_ok=True)
            path = write_json_artifact(doc, args.output / "lineage.json")
            print(f"[written to {path}]", file=sys.stderr)
    elif args.dot:
        text = "\n".join(dots)
        print(text)
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            path = args.output / "lineage.dot"
            path.write_text(text + "\n")
            print(f"[written to {path}]", file=sys.stderr)
    else:
        text = f"run {record['run_id']} ({record.get('name')})\n\n"
        text += "\n\n".join(sections)
        _emit(text, "lineage", args.output)
    for v in violations:
        print(f"repro lineage: VIOLATION: {v}", file=sys.stderr)
    if args.check:
        for s in insane:
            print(f"repro lineage: NOT SANE: {s}", file=sys.stderr)
    if violations:
        return 1
    return 1 if args.check and insane else 0


_COMMANDS = {
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "headline": _cmd_headline,
    "demo": _cmd_demo,
    "sweep": _cmd_sweep,
    "fabric": _cmd_fabric,
    "watch": _cmd_watch,
    "report": _cmd_report,
    "runs": _cmd_runs,
    "explain": _cmd_explain,
    "lineage": _cmd_lineage,
    "bench": _cmd_bench,
    "inspect": _cmd_inspect,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        import logging

        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            format="%(levelname)s %(name)s: %(message)s",
        )
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Virtual machine descriptors and co-location reasoning.

In the paper's cloud framing, interference arises because VMs belonging to
different tenants are pinned to the same physical cores. The simulator does
not need a full hypervisor — the proportional-share core already produces
the contention — but experiments and documentation benefit from an explicit
VM layer: which accounting domain runs where, and which cores are
co-located (shared by more than one VM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["VirtualMachine", "colocated_cores"]


@dataclass(frozen=True)
class VirtualMachine:
    """A VM: an accounting domain pinned to a set of physical cores.

    Attributes
    ----------
    name:
        Unique VM name; doubles as the accounting tag (``owner``) of the
        processes the VM's job creates.
    core_ids:
        Physical cores the VM's vCPUs are pinned to (one vCPU per core).
    weight:
        Hypervisor/OS scheduling weight of this VM's processes. The paper
        observed the host favouring the background job for Mol3D; a weight
        above 1.0 reproduces that preference mechanistically.
    """

    name: str
    core_ids: Tuple[int, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if len(set(self.core_ids)) != len(self.core_ids):
            raise ValueError(f"VM {self.name!r} pins the same core twice")
        if self.weight <= 0:
            raise ValueError(f"VM {self.name!r} weight must be > 0")

    @property
    def vcpus(self) -> int:
        """Number of virtual CPUs (== pinned physical cores)."""
        return len(self.core_ids)


def colocated_cores(vms: Iterable[VirtualMachine]) -> Dict[int, List[str]]:
    """Map each physical core shared by >= 2 VMs to the VM names on it.

    This identifies exactly the cores where interference occurs — the
    "Core#4" of the paper's Figure 1.
    """
    by_core: Dict[int, List[str]] = {}
    for vm in vms:
        for cid in vm.core_ids:
            by_core.setdefault(cid, []).append(vm.name)
    return {cid: names for cid, names in by_core.items() if len(names) > 1}

"""Cluster substrate: nodes, cores, VMs, interference, network.

The paper's testbed is 8 single-socket nodes with a quad-core Xeon X3430
(32 cores total), per-node watt meters, and co-located VMs supplying
interference. This package models that hardware:

* :mod:`repro.cluster.node` / :mod:`repro.cluster.cluster` — nodes made of
  :class:`~repro.sim.cpu.SharedCore` cores, grouped into a
  :class:`Cluster` with the paper's default shape (8 x 4).
* :mod:`repro.cluster.vm` — VM descriptors pinning an accounting domain to
  physical cores; co-location of two VMs on a core is what produces
  interference.
* :mod:`repro.cluster.background` — interfering-load primitives with
  start/stop schedules (the "BG task" of Figures 1 and 3). The *measured*
  background job of Figure 2 is a real 2-core Wave2D application built by
  the experiment harness; the primitives here model generic noisy
  neighbours.
* :mod:`repro.cluster.netmodel` — message/migration cost model, with a
  degraded "virtualised" preset reflecting the inferior network performance
  the paper cites for clouds.
"""

from repro.cluster.node import Node
from repro.cluster.cluster import Cluster
from repro.cluster.vm import VirtualMachine, colocated_cores
from repro.cluster.background import Interferer, InterferencePhase, PhasedInterference
from repro.cluster.netmodel import NetworkModel

__all__ = [
    "Node",
    "Cluster",
    "VirtualMachine",
    "colocated_cores",
    "Interferer",
    "InterferencePhase",
    "PhasedInterference",
    "NetworkModel",
]

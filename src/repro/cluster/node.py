"""Compute node: a group of cores sharing a power budget.

Matches the paper's testbed unit: one single-socket quad-core machine with
its own watt meter. Nothing here enforces intra-node behaviour beyond
grouping — cores are independent under processor sharing — but power
accounting (base power per *node*) and VM co-location reasoning both need
the grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.sim.cpu import SharedCore

__all__ = ["Node"]


@dataclass
class Node:
    """One physical machine.

    Attributes
    ----------
    node_id:
        Index within the cluster.
    cores:
        The node's cores, in global-core-id order.
    """

    node_id: int
    cores: List[SharedCore] = field(default_factory=list)

    @property
    def core_ids(self) -> Sequence[int]:
        """Global ids of this node's cores."""
        return [c.core_id for c in self.cores]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def busy_core_count(self) -> int:
        """Number of cores currently executing at least one process."""
        return sum(1 for c in self.cores if c.runnable_count > 0)

    def total_busy_time(self) -> float:
        """Sum of per-core busy wall-seconds (synchronised to now)."""
        total = 0.0
        for c in self.cores:
            c.sync()
            total += c.busy_time
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.node_id}, cores={self.core_ids})"

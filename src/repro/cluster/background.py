"""Interfering background-load primitives.

Two kinds of interference appear in the paper:

1. A *measured* background job (Figure 2): a real 2-core Wave2D run whose
   own timing penalty is part of the evaluation. That job is a first-class
   application built by :mod:`repro.experiments` on top of the runtime.
2. *Scripted* interference (Figures 1 and 3): a job that appears on one
   core, disappears, then reappears on another — used to show the balancer
   reacting. For these, a full application is unnecessary; this module
   provides :class:`Interferer`, a CPU hog bound to one core over a time
   window, and :class:`PhasedInterference`, a schedule of such windows.

An :class:`Interferer` is always runnable while active (it models a
compute-bound co-located VM), so whenever the instrumented application is
also runnable on that core, both advance at their weight shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.cpu import SharedCore
from repro.sim.engine import SimulationEngine
from repro.sim.process import ProcessState, SimProcess
from repro.util import check_non_negative, check_positive

__all__ = ["Interferer", "InterferencePhase", "PhasedInterference"]

#: Demand top-up quantum for open-ended hogs (CPU-seconds). Large enough
#: that top-ups are rare, small enough to avoid float-precision loss when
#: subtracting tiny accruals from the remaining demand.
_TOPUP = 1e6


class Interferer:
    """A compute-bound background process occupying one core for a window.

    Parameters
    ----------
    engine, core:
        Simulation engine and the core the interferer is pinned to.
    start:
        Activation time (seconds); ``None`` for fully manual control via
        :meth:`activate` / :meth:`deactivate` (used by event-driven
        schedules such as the Figure 3 harness, which flips interference
        at iteration boundaries).
    end:
        Deactivation time; ``None`` means "until the simulation ends"
        (or until :meth:`deactivate` is called).
    weight:
        Share-scheduler weight (1.0 = fair share against a weight-1 app).
    owner:
        Accounting tag; defaults to ``"bg:interferer-<core>"``.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        core: SharedCore,
        *,
        start: Optional[float] = 0.0,
        end: Optional[float] = None,
        weight: float = 1.0,
        owner: Optional[str] = None,
    ) -> None:
        check_positive("weight", weight)
        if start is not None:
            check_non_negative("start", start)
            if end is not None and end < start:
                raise ValueError(f"end ({end}) precedes start ({start})")
        elif end is not None:
            raise ValueError("end requires a scheduled start time")
        self.engine = engine
        self.core = core
        self.start = None if start is None else float(start)
        self.end = None if end is None else float(end)
        self.owner = owner or f"bg:interferer-{core.core_id}"
        self.process = SimProcess(
            name=self.owner, demand=_TOPUP, weight=weight, owner=self.owner
        )
        self.active = False
        if self.start is not None:
            engine.schedule_at(self.start, self.activate)
        if self.end is not None:
            engine.schedule_at(self.end, self.deactivate)

    def activate(self) -> None:
        """Put the hog on its core now (idempotent)."""
        if self.process.state is ProcessState.RUNNABLE:
            return
        self.core.dispatch(self.process)
        self.active = True
        # keep the hog topped up so it never self-completes
        self._arm_topup()

    def _arm_topup(self) -> None:
        def topup() -> None:
            if self.active and self.process.state is ProcessState.RUNNABLE:
                if self.process.remaining < _TOPUP / 2:
                    self.core.add_demand(self.process, _TOPUP)
                self._arm_topup()

        # check twice per quantum worst-case consumption horizon
        self.engine.schedule_after(_TOPUP / 2, topup)

    def deactivate(self) -> None:
        """Take the hog off its core now (idempotent)."""
        if self.process.state is ProcessState.RUNNABLE:
            self.core.preempt(self.process)
        self.active = False

    @property
    def cpu_consumed(self) -> float:
        """CPU-seconds this interferer has executed so far."""
        self.core.sync()
        return self.process.cpu_time


@dataclass(frozen=True)
class InterferencePhase:
    """One scripted interference window: ``core_id`` hogged on [start, end).

    ``end=None`` leaves the interferer on until the simulation finishes.
    """

    core_id: int
    start: float
    end: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("start", self.start)
        if self.end is not None and self.end < self.start:
            raise ValueError("phase end precedes start")
        check_positive("weight", self.weight)


class PhasedInterference:
    """Instantiate a list of :class:`InterferencePhase` on a cluster.

    This is the Figure 3 driver: e.g. BG on core 1 during [0, 40), then on
    core 3 during [80, 120).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cores: Sequence[SharedCore],
        phases: Sequence[InterferencePhase],
    ) -> None:
        self.phases = list(phases)
        self.interferers: List[Interferer] = []
        by_id = {c.core_id: c for c in cores}
        for i, phase in enumerate(self.phases):
            if phase.core_id not in by_id:
                raise ValueError(
                    f"phase {i} targets unknown core {phase.core_id}"
                )
            self.interferers.append(
                Interferer(
                    engine,
                    by_id[phase.core_id],
                    start=phase.start,
                    end=phase.end,
                    weight=phase.weight,
                    owner=f"bg:phase{i}-core{phase.core_id}",
                )
            )

    def total_cpu_consumed(self) -> float:
        """CPU-seconds consumed by all scripted interferers."""
        return sum(i.cpu_consumed for i in self.interferers)

"""Network cost model.

Two costs matter to the reproduction:

* **iteration communication** — after every iteration, a tightly coupled
  application exchanges halo/neighbour data before the next iteration can
  begin. We charge a per-iteration communication delay derived from the
  message size and this model.
* **migration cost** — moving a chare transfers its state; the paper's
  reported wall times include migration, and its future-work section
  proposes skipping migrations whose gain cannot offset this cost
  (implemented in :mod:`repro.core.migration_cost`).

The ``virtualized`` preset reflects the degraded network performance of
clouds that the paper (and the studies it cites, e.g. the Magellan report)
measured: substantially higher latency and lower effective bandwidth than
native HPC interconnects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.profiler import active as _profiler
from repro.util import check_non_negative, check_positive

__all__ = ["NetworkModel"]

_INF = float("inf")


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth cost model.

    Attributes
    ----------
    latency_s:
        One-way message latency (seconds).
    bandwidth_Bps:
        Effective point-to-point bandwidth (bytes/second).
    per_message_overhead_s:
        Fixed software overhead per message (packetisation, virtio exits in
        the virtualised case).
    """

    latency_s: float = 50e-6
    bandwidth_Bps: float = 125e6  # ~1 GbE effective
    per_message_overhead_s: float = 5e-6

    def __post_init__(self) -> None:
        check_non_negative("latency_s", self.latency_s)
        check_positive("bandwidth_Bps", self.bandwidth_Bps)
        check_non_negative("per_message_overhead_s", self.per_message_overhead_s)

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def native(cls) -> "NetworkModel":
        """Dedicated-cluster Ethernet, as on the paper's testbed."""
        return cls(latency_s=50e-6, bandwidth_Bps=125e6, per_message_overhead_s=5e-6)

    @classmethod
    def virtualized(cls) -> "NetworkModel":
        """Cloud / virtualised network: ~4x latency, ~half bandwidth."""
        return cls(latency_s=200e-6, bandwidth_Bps=60e6, per_message_overhead_s=20e-6)

    @classmethod
    def zero(cls) -> "NetworkModel":
        """Free network — isolates pure CPU effects in unit tests."""
        return cls(latency_s=0.0, bandwidth_Bps=1e18, per_message_overhead_s=0.0)

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    def message_time(self, nbytes: float) -> float:
        """Wall time to deliver one ``nbytes`` message.

        Too cheap to scope-time (two clock reads would dwarf the
        arithmetic), so the profiler records a clock-free tally of call
        count and bytes costed instead.
        """
        # hot path (one call per halo exchange / reduction hop): inline
        # comparisons accept the common case; the full checker handles the rest
        t = type(nbytes)
        if not ((t is float or t is int) and 0 <= nbytes < _INF):
            check_non_negative("nbytes", nbytes)
        _profiler().tally("net.message_time", nbytes)
        return self.latency_s + self.per_message_overhead_s + nbytes / self.bandwidth_Bps

    def migration_time(self, state_bytes: float) -> float:
        """Wall time to migrate one chare of ``state_bytes`` serialised state.

        Modelled as one bulk transfer plus a pair of control messages
        (the Charm++ migration protocol's pack/unpack handshake).
        """
        check_non_negative("state_bytes", state_bytes)
        _profiler().tally("net.migration_time", state_bytes)
        return self.message_time(state_bytes) + 2 * self.message_time(64)

"""Cluster: the full testbed of nodes and cores.

The default shape mirrors the paper's testbed — 8 nodes x 4 cores = 32
cores. A :class:`Cluster` owns its cores (each a proportional-share
:class:`~repro.sim.cpu.SharedCore`) and provides the id arithmetic the rest
of the system needs: core -> node lookup, per-owner ``/proc/stat`` views,
and subset selection for runs that use fewer cores than exist (Figure 2
sweeps 4..32 cores on the same testbed).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.cpu import SharedCore
from repro.sim.engine import SimulationEngine
from repro.sim.procstat import ProcStat
from repro.cluster.node import Node
from repro.util import check_positive

__all__ = ["Cluster"]


class Cluster:
    """A homogeneous cluster of multi-core nodes.

    Parameters
    ----------
    engine:
        Simulation engine (time source) shared by all cores.
    num_nodes:
        Number of nodes (paper testbed: 8).
    cores_per_node:
        Cores per node (paper testbed: 4, the quad-core Xeon X3430).
    record_intervals:
        Forwarded to every core; enables busy-interval logs used for power
        time-series and timeline rendering.
    core_speeds:
        Optional per-core relative speeds (length ``num_nodes *
        cores_per_node``; default: homogeneous 1.0). Models clouds whose
        VMs land on hosts of different generations — see
        :class:`~repro.sim.cpu.SharedCore` for the accounting semantics.
    """

    #: The paper's testbed shape.
    DEFAULT_NODES = 8
    DEFAULT_CORES_PER_NODE = 4

    def __init__(
        self,
        engine: SimulationEngine,
        num_nodes: int = DEFAULT_NODES,
        cores_per_node: int = DEFAULT_CORES_PER_NODE,
        *,
        record_intervals: bool = False,
        core_speeds: Optional[Sequence[float]] = None,
    ) -> None:
        check_positive("num_nodes", num_nodes)
        check_positive("cores_per_node", cores_per_node)
        total = int(num_nodes) * int(cores_per_node)
        if core_speeds is not None and len(core_speeds) != total:
            raise ValueError(
                f"core_speeds has {len(core_speeds)} entries, expected {total}"
            )
        self.engine = engine
        self.num_nodes = int(num_nodes)
        self.cores_per_node = int(cores_per_node)
        self.nodes: List[Node] = []
        self.cores: List[SharedCore] = []
        cid = 0
        for nid in range(self.num_nodes):
            node = Node(node_id=nid)
            for _ in range(self.cores_per_node):
                speed = 1.0 if core_speeds is None else float(core_speeds[cid])
                core = SharedCore(
                    engine, cid, speed=speed, record_intervals=record_intervals
                )
                node.cores.append(core)
                self.cores.append(core)
                cid += 1
            self.nodes.append(node)

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        """Total core count across all nodes."""
        return self.num_nodes * self.cores_per_node

    def core(self, core_id: int) -> SharedCore:
        """The core with global id ``core_id``."""
        if not 0 <= core_id < self.num_cores:
            raise IndexError(f"core_id {core_id} out of range [0, {self.num_cores})")
        return self.cores[core_id]

    def node_of(self, core_id: int) -> Node:
        """The node hosting global core ``core_id``."""
        if not 0 <= core_id < self.num_cores:
            raise IndexError(f"core_id {core_id} out of range [0, {self.num_cores})")
        return self.nodes[core_id // self.cores_per_node]

    def nodes_for(self, core_ids: Iterable[int]) -> List[Node]:
        """Distinct nodes (in id order) covering ``core_ids``."""
        seen: Dict[int, Node] = {}
        for cid in core_ids:
            node = self.node_of(cid)
            seen[node.node_id] = node
        return [seen[k] for k in sorted(seen)]

    def procstat(
        self, owner: str, core_ids: Optional[Sequence[int]] = None
    ) -> ProcStat:
        """An OS-counter view for job ``owner`` over ``core_ids``.

        ``core_ids`` defaults to every core in the cluster.
        """
        if core_ids is None:
            core_ids = range(self.num_cores)
        return ProcStat({cid: self.core(cid) for cid in core_ids}, owner=owner)

    def sync_all(self) -> None:
        """Bring every core's accounting up to the current time."""
        for core in self.cores:
            core.sync()

    def finalize_intervals(self) -> None:
        """Close open busy intervals on every core (end of run)."""
        for core in self.cores:
            core.finalize_intervals()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={self.num_nodes}, cores_per_node="
            f"{self.cores_per_node})"
        )

"""Algorithm 1 — Refinement Load Balancing for VM Interference.

This is the paper's contribution, implemented line-by-line from the
pseudocode (line numbers below refer to Algorithm 1 in the paper):

====================  ====================================================
Paper lines           Here
====================  ====================================================
2–8   classify        :meth:`RefineVMInterferenceLB._classify` builds the
                      ``overheap`` (cores with load > T_avg + ε, line 4)
                      and ``underset`` (load < T_avg − ε, line 6)
17–27 ``isheavy``     ``load > t_avg + eps`` with load = Σ t_i + O_p
29–39 ``islight``     ``t_avg − load > eps``
10–15 transfer loop   :meth:`decide`: pop the most loaded donor (line 11),
                      find the biggest transferable task and its receiver
                      (line 12, :meth:`_best_core_and_task`), update the
                      mapping (line 13) and both loads / structures
                      (line 14), until the overheap empties (line 10)
====================  ====================================================

The crucial difference from classic refinement is that **O_p — the
background load of Eq. (2) — is part of every core's load**: a core that
loses half its cycles to a co-located VM looks half as capacious, so the
algorithm drains application objects off it even though the application's
own work there was perfectly average.

Robustness beyond the pseudocode (the paper assumes a transfer always
exists): if a donor has no task that fits in any underloaded core without
overloading it, the donor is abandoned for this step (best-effort
refinement, as Charm++'s RefineLB does). This guarantees termination —
every loop iteration either migrates one task (donor load strictly drops,
receivers never become overloaded) or permanently removes a donor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.balancer import LoadBalancer
from repro.core.database import ChareKey, LBView, Migration, TaskRecord
from repro.core.heaps import MaxHeap
from repro.telemetry.audit import (
    ACCEPTED,
    REASON_ACCEPTED,
    REASON_NO_UNDERLOADED_TARGET,
    REASON_RECEIVER_WOULD_EXCEED,
    REASON_ZERO_CPU_TASK,
    REJECTED,
)
from repro.util import check_non_negative

__all__ = ["RefineVMInterferenceLB"]


class RefineVMInterferenceLB(LoadBalancer):
    """Interference-aware refinement balancer (the paper's Algorithm 1).

    Parameters
    ----------
    epsilon:
        The operator-tunable slack ε of Eq. (3). Interpreted as a
        *fraction of T_avg* by default (a 32-core run with T_avg = 2 s and
        ``epsilon=0.05`` tolerates ±0.1 s), or as absolute seconds when
        ``absolute_epsilon=True``.
    use_bg_load:
        Include O_p in core loads (Eq. 1). True is the paper's scheme;
        False degrades this class to classic interference-*oblivious*
        refinement (used via :class:`repro.core.refine.RefineLB` as the
        ablation baseline).
    absolute_epsilon:
        Interpret ``epsilon`` in seconds rather than as a fraction.
    """

    name = "refine-vm-interference"

    def __init__(
        self,
        epsilon: float = 0.05,
        *,
        use_bg_load: bool = True,
        absolute_epsilon: bool = False,
    ) -> None:
        check_non_negative("epsilon", epsilon)
        self.epsilon = float(epsilon)
        self.use_bg_load = bool(use_bg_load)
        self.absolute_epsilon = bool(absolute_epsilon)

    # ------------------------------------------------------------------
    # load accounting
    # ------------------------------------------------------------------
    def _core_load(self, core_tasks_time: float, bg_load: float) -> float:
        """Σ t_i (+ O_p when interference-aware) — isheavy/islight's total."""
        return core_tasks_time + (bg_load if self.use_bg_load else 0.0)

    def _t_avg(self, view: LBView) -> float:
        """Eq. (1), degraded to the plain task average when unaware."""
        if not view.cores:
            return 0.0
        return sum(
            self._core_load(c.task_time, c.bg_load) for c in view.cores
        ) / len(view.cores)

    def _eps(self, t_avg: float) -> float:
        return self.epsilon if self.absolute_epsilon else self.epsilon * t_avg

    def audit_thresholds(self, view: LBView) -> Tuple[float, Optional[float]]:
        """The strategy's own load model: Eq. (1) T_avg and resolved ε."""
        t_avg = self._t_avg(view)
        return t_avg, self._eps(t_avg)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def decide(self, view: LBView) -> List[Migration]:
        t_avg = self._t_avg(view)
        eps = self._eps(t_avg)

        # mutable working state: per-core load, task lists, and the task
        # location map (kept current as migrations are decided; subclasses
        # such as the communication-aware variant use it)
        load: Dict[int, float] = {}
        tasks: Dict[int, List[TaskRecord]] = {}
        location: Dict[ChareKey, int] = {}
        for c in view.cores:
            load[c.core_id] = self._core_load(c.task_time, c.bg_load)
            # biggest-first ordering supports the "biggest task" selection
            tasks[c.core_id] = sorted(
                c.tasks, key=lambda t: (-t.cpu_time, t.chare)
            )
            for t in c.tasks:
                location[t.chare] = c.core_id

        overheap, underset = self._classify(view, load, t_avg, eps)

        migrations: List[Migration] = []
        while len(overheap) > 0:  # line 10
            donor, _donor_load = overheap.pop()  # line 11
            best = self._best_core_and_task(  # line 12
                donor, tasks[donor], load, underset, t_avg, eps,
                location=location,
            )
            if best is None:
                # pseudocode assumes a transfer exists; best-effort: skip
                # this donor for the rest of the step (see module docs).
                continue
            task, dest = best
            migrations.append(Migration(chare=task.chare, src=donor, dst=dest))  # line 13

            # line 14: updateHeapAndSet()
            tasks[donor].remove(task)
            tasks[dest].append(task)
            location[task.chare] = dest
            load[donor] -= task.cpu_time
            load[dest] += task.cpu_time
            if load[donor] - t_avg > eps:  # still heavy: back on the heap
                overheap.push(donor, load[donor])
            elif t_avg - load[donor] > eps:  # overshot into lightness
                underset[donor] = True
            if not (t_avg - load[dest] > eps):  # receiver no longer light
                underset.pop(dest, None)

        return migrations

    # ------------------------------------------------------------------
    # helpers (paper lines 2-8 and 12)
    # ------------------------------------------------------------------
    def _classify(
        self,
        view: LBView,
        load: Dict[int, float],
        t_avg: float,
        eps: float,
    ) -> Tuple[MaxHeap[int], Dict[int, bool]]:
        """Lines 2–8: split cores into overheap / underset."""
        overheap: MaxHeap[int] = MaxHeap()
        underset: Dict[int, bool] = {}  # insertion-ordered set of core ids
        for c in view.cores:
            l = load[c.core_id]
            if l - t_avg > eps:  # isheavy, line 22
                overheap.push(c.core_id, l)
            elif t_avg - l > eps:  # islight, line 34
                underset[c.core_id] = True
        return overheap, underset

    def _best_core_and_task(
        self,
        donor: int,
        donor_tasks: List[TaskRecord],
        load: Dict[int, float],
        underset: Dict[int, bool],
        t_avg: float,
        eps: float,
        *,
        location: Optional[Dict[ChareKey, int]] = None,
    ) -> Optional[Tuple[TaskRecord, int]]:
        """Line 12: ``getbestcoreandtask(donor, underset)``.

        Scans the donor's tasks biggest-first; for each, looks for the
        *least-loaded* underloaded core that can absorb it without itself
        becoming overloaded (the paper's constraint: "we only pick an
        underloaded core that does not get overloaded after the task
        transfer"). Returns the first (i.e. biggest) feasible pair.

        ``location`` is the current (mid-decision) task -> core map; the
        base algorithm does not use it, but subclasses refining the
        receiver choice (e.g. communication awareness) do.
        """
        if not underset:
            self.note_candidate(
                None, donor, None, None, REJECTED, REASON_NO_UNDERLOADED_TARGET
            )
            return None
        candidates = sorted(underset, key=lambda cid: (load[cid], cid))
        for task in donor_tasks:
            if task.cpu_time <= 0.0:
                # zero-cost tasks can't reduce donor load; moving them only
                # burns migration bandwidth
                self.note_candidate(
                    task.chare, donor, None, task.cpu_time,
                    REJECTED, REASON_ZERO_CPU_TASK,
                )
                break
            for cid in candidates:
                if load[cid] + task.cpu_time - t_avg <= eps:
                    self.note_candidate(
                        task.chare, donor, cid, task.cpu_time,
                        ACCEPTED, REASON_ACCEPTED,
                    )
                    return task, cid
            # every underloaded receiver would be pushed past T_avg + ε
            self.note_candidate(
                task.chare, donor, None, task.cpu_time,
                REJECTED, REASON_RECEIVER_WOULD_EXCEED,
            )
        return None

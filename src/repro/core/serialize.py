"""JSON (de)serialisation of LB views and decisions.

For debugging a production balancer you want to capture the exact
:class:`~repro.core.database.LBView` a step saw and replay it offline
against candidate strategies. These helpers give every view/migration a
stable, human-readable JSON form:

* :func:`view_to_dict` / :func:`view_from_dict` — lossless round-trip of
  an ``LBView`` including task communication records;
* :func:`migrations_to_dict` / :func:`migrations_from_dict` — the
  decision list;
* :func:`dump_view` / :func:`load_view` — file convenience wrappers.

Example — capture and replay::

    dump_view(view, "step17.json")
    ...
    view = load_view("step17.json")
    for lb in candidates:
        print(lb.name, lb.balance(view))
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.core.database import (
    ChareKey,
    CoreLoad,
    LBView,
    Migration,
    TaskRecord,
)

__all__ = [
    "view_to_dict",
    "view_from_dict",
    "migrations_to_dict",
    "migrations_from_dict",
    "dump_view",
    "load_view",
]

_FORMAT_VERSION = 1


def _key_to_list(key: ChareKey) -> List[Any]:
    return [key[0], key[1]]


def _key_from_list(data: Sequence[Any]) -> ChareKey:
    if len(data) != 2 or not isinstance(data[0], str):
        raise ValueError(f"malformed chare key {data!r}")
    return (data[0], int(data[1]))


def view_to_dict(view: LBView) -> Dict[str, Any]:
    """Lossless dict form of an :class:`LBView`."""
    return {
        "format": _FORMAT_VERSION,
        "window": view.window,
        "cores": [
            {
                "core_id": c.core_id,
                "bg_load": c.bg_load,
                "tasks": [
                    {
                        "chare": _key_to_list(t.chare),
                        "cpu_time": t.cpu_time,
                        "state_bytes": t.state_bytes,
                        "comm": [
                            [_key_to_list(other), nbytes]
                            for other, nbytes in t.comm
                        ],
                    }
                    for t in c.tasks
                ],
            }
            for c in view.cores
        ],
    }


def view_from_dict(data: Dict[str, Any]) -> LBView:
    """Rebuild an :class:`LBView` from :func:`view_to_dict` output.

    Validates the format version and re-runs all dataclass invariants,
    so corrupted captures fail loudly.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported LBView capture format {data.get('format')!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    cores = []
    for c in data["cores"]:
        tasks = tuple(
            TaskRecord(
                chare=_key_from_list(t["chare"]),
                cpu_time=float(t["cpu_time"]),
                state_bytes=float(t.get("state_bytes", 0.0)),
                comm=tuple(
                    (_key_from_list(other), float(nbytes))
                    for other, nbytes in t.get("comm", [])
                ),
            )
            for t in c["tasks"]
        )
        cores.append(
            CoreLoad(
                core_id=int(c["core_id"]),
                tasks=tasks,
                bg_load=float(c.get("bg_load", 0.0)),
            )
        )
    return LBView(cores=tuple(cores), window=float(data["window"]))


def migrations_to_dict(migrations: Sequence[Migration]) -> List[Dict[str, Any]]:
    """Dict form of a migration list."""
    return [
        {"chare": _key_to_list(m.chare), "src": m.src, "dst": m.dst}
        for m in migrations
    ]


def migrations_from_dict(data: Sequence[Dict[str, Any]]) -> List[Migration]:
    """Rebuild migrations from :func:`migrations_to_dict` output."""
    return [
        Migration(
            chare=_key_from_list(m["chare"]), src=int(m["src"]), dst=int(m["dst"])
        )
        for m in data
    ]


def dump_view(view: LBView, path: str) -> None:
    """Write ``view`` to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(view_to_dict(view), fh, indent=1)


def load_view(path: str) -> LBView:
    """Read an :class:`LBView` from a JSON capture."""
    with open(path) as fh:
        return view_from_dict(json.load(fh))

"""Locality-preferring hierarchical refinement.

Charm++'s hierarchical balancers (HybridLB et al.) try to keep
migrations *within a node*, where object transfer is a shared-memory copy
instead of a wire transfer. :class:`HierarchicalLB` brings that goal to
Algorithm 1 without changing its balance semantics:

1. the inner strategy (flat Algorithm 1 by default) decides migrations on
   the full view — donors, biggest-task order, Eq. (3) feasibility all
   exactly as the paper specifies;
2. each migration's *destination* is then redirected to a core in the
   donor's own group (node) whenever one exists that is also feasible —
   underloaded, and not pushed past ``T_avg + ε`` by the transfer. If no
   intra-group receiver qualifies, the original destination stands.

Balance quality is preserved by construction (every redirected receiver
satisfies the same feasibility bound the inner strategy enforced); the
share of intra-node migrations is maximised greedily. The benefit is
mechanical on a runtime whose migration cost discounts intra-node
transfers (``Runtime(local_comm_factor=...)``) — benchmark ABL-HIER
measures both the locality share and the wall-clock delta.

A note on the road not taken: a *quotient* formulation (one synthetic
core per node, balance groups first) is unstable under the paper's load
model — a node whose interference is concentrated on some of its cores
aggregates to "overloaded" even when its remaining cores have spare
capacity, so successive steps push work out and pull it back. The
redirect formulation sidesteps that while keeping the locality win; the
oscillation is documented by ``tests/core/test_hierarchical_lb.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.balancer import LoadBalancer
from repro.core.database import ChareKey, LBView, Migration
from repro.core.interference import RefineVMInterferenceLB
from repro.perf.profiler import active as _profiler
from repro.telemetry.audit import (
    NOTED,
    REASON_REDIRECT_INTRA_NODE,
    REASON_REDIRECT_KEPT_REMOTE,
)

__all__ = ["HierarchicalLB"]


class HierarchicalLB(LoadBalancer):
    """Algorithm 1 with intra-node destination preference.

    Parameters
    ----------
    group_of:
        ``core_id -> group id``; the canonical grouping is by node
        (:meth:`by_node`).
    inner:
        The deciding strategy (default: fresh
        :class:`RefineVMInterferenceLB`). Must expose ``epsilon`` /
        ``absolute_epsilon`` / ``use_bg_load`` attributes for the
        feasibility re-check; any :class:`RefineVMInterferenceLB`
        subclass qualifies.
    """

    name = "hierarchical"

    def __init__(
        self,
        group_of: Callable[[int], int],
        inner: Optional[RefineVMInterferenceLB] = None,
    ) -> None:
        self.group_of = group_of
        self.inner = inner or RefineVMInterferenceLB(0.05)
        if not isinstance(self.inner, RefineVMInterferenceLB):
            raise TypeError(
                "HierarchicalLB needs a RefineVMInterferenceLB-family inner "
                f"strategy, got {type(self.inner).__name__}"
            )
        self.name = f"hierarchical({self.inner.name})"
        #: statistics from the last decide(): migrations kept intra-group
        self.last_intra = 0
        #: and migrations that had to cross groups
        self.last_inter = 0

    @classmethod
    def by_node(
        cls,
        cores_per_node: int = 4,
        inner: Optional[RefineVMInterferenceLB] = None,
    ) -> "HierarchicalLB":
        """Group cores into consecutive ``cores_per_node`` blocks."""
        if cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        return cls(lambda cid: cid // cores_per_node, inner=inner)

    def audit_thresholds(self, view: LBView):
        """Report the deciding (inner) strategy's thresholds."""
        return self.inner.audit_thresholds(view)

    # ------------------------------------------------------------------
    def decide(self, view: LBView) -> List[Migration]:
        # lend our audit buffer so the inner strategy's candidate notes
        # land in this (outer) step's record
        self._lend_audit_buffer(self.inner)
        try:
            decided = self.inner.balance(view)
        finally:
            self._reclaim_audit_buffer(self.inner)
        if not decided:
            self.last_intra = self.last_inter = 0
            return []

        t_avg = self.inner._t_avg(view)
        eps = self.inner._eps(t_avg)
        cpu = {t.chare: t.cpu_time for c in view.cores for t in c.tasks}

        # working loads under the inner strategy's decisions, applied one
        # migration at a time so redirections see current occupancy
        load: Dict[int, float] = {
            c.core_id: self.inner._core_load(c.task_time, c.bg_load)
            for c in view.cores
        }
        groups: Dict[int, List[int]] = {}
        for c in view.cores:
            groups.setdefault(self.group_of(c.core_id), []).append(c.core_id)

        redirected: List[Migration] = []
        self.last_intra = self.last_inter = 0
        with _profiler().phase("lb.hierarchical.redirect"):
            self._redirect(decided, redirected, groups, load, cpu, t_avg, eps)
        return redirected

    def _redirect(
        self,
        decided: List[Migration],
        redirected: List[Migration],
        groups: Dict[int, List[int]],
        load: Dict[int, float],
        cpu: Dict[ChareKey, float],
        t_avg: float,
        eps: float,
    ) -> None:
        """The locality pass: retarget each migration intra-group."""
        for m in decided:
            task_time = cpu[m.chare]
            dst = m.dst
            src_group = self.group_of(m.src)
            if self.group_of(dst) != src_group:
                # look for a feasible receiver inside the donor's group
                candidates = [
                    cid
                    for cid in groups[src_group]
                    if cid != m.src
                    and t_avg - load[cid] > eps  # islight (line 34)
                    and load[cid] + task_time - t_avg <= eps  # stays feasible
                ]
                if candidates:
                    dst = min(candidates, key=lambda cid: (load[cid], cid))
                self.note_candidate(
                    m.chare, m.src, dst, task_time, NOTED,
                    REASON_REDIRECT_INTRA_NODE
                    if self.group_of(dst) == src_group
                    else REASON_REDIRECT_KEPT_REMOTE,
                )
            if self.group_of(dst) == src_group:
                self.last_intra += 1
            else:
                self.last_inter += 1
            load[m.src] -= task_time
            load[dst] += task_time
            redirected.append(Migration(chare=m.chare, src=m.src, dst=dst))

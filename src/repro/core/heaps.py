"""Max-heap of cores keyed by load, as used by Algorithm 1.

The paper's pseudocode manipulates an ``overheap`` (max-heap of overloaded
cores) and an ``underset`` (set of underloaded cores). Core loads change as
tasks are transferred, so the heap supports keyed re-insertion; with at
most a few dozen cores a simple binary heap with lazy invalidation is both
simple and fast.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["MaxHeap"]


class MaxHeap(Generic[T]):
    """Max-heap with updatable priorities and lazy deletion.

    ``push(item, priority)`` on an existing item re-prioritises it.
    ``pop()`` returns the item with the largest priority (FIFO among
    ties, for determinism).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._live: Dict[T, Tuple[float, int]] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, item: T) -> bool:
        return item in self._live

    def push(self, item: T, priority: float) -> None:
        """Insert ``item`` or update its priority."""
        entry = (-priority, next(self._counter))
        self._live[item] = entry
        heapq.heappush(self._heap, (entry[0], entry[1], item))

    def remove(self, item: T) -> None:
        """Remove ``item`` (lazy). No-op if absent."""
        self._live.pop(item, None)

    def priority(self, item: T) -> Optional[float]:
        """Current priority of ``item`` (None if absent)."""
        entry = self._live.get(item)
        return None if entry is None else -entry[0]

    def pop(self) -> Tuple[T, float]:
        """Remove and return ``(item, priority)`` with the max priority."""
        while self._heap:
            negp, cnt, item = heapq.heappop(self._heap)
            if self._live.get(item) == (negp, cnt):
                del self._live[item]
                return item, -negp
        raise IndexError("pop from empty MaxHeap")

    def peek(self) -> Tuple[T, float]:
        """Return ``(item, priority)`` with the max priority, not removing."""
        while self._heap:
            negp, cnt, item = self._heap[0]
            if self._live.get(item) == (negp, cnt):
                return item, -negp
            heapq.heappop(self._heap)
        raise IndexError("peek at empty MaxHeap")

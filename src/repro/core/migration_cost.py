"""Migration-cost-aware gating — the paper's §VI future work.

    "Due to the inferior performance of network, we also plan to explore
    a strategy where load balancing decisions are performed every time a
    load balancer is invoked, however, data migration is performed only
    if we expect gains that can offset the cost of migration."

:class:`MigrationCostAwareLB` wraps any inner strategy. At each step it
lets the inner strategy decide, then *predicts* the benefit over the next
LB window and compares it to the transfer cost under a
:class:`~repro.cluster.netmodel.NetworkModel`:

* **gain** — the drop in the maximum per-core load (the iteration-time
  bound of a tightly coupled app) between the current mapping and the
  post-migration mapping, assuming load persistence;
* **cost** — migrations proceed in parallel across cores but serialise on
  each core's NIC, so cost = max over cores of that core's inbound plus
  outbound transfer time.

If ``gain < safety_factor * cost`` the step performs *no* migrations
(decisions are still made, exactly as the paper describes). On a degraded
virtualised network this gate suppresses churn that would cost more than
it saves — benchmark ABL-MIGCOST sweeps chare state size to find the
crossover.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.netmodel import NetworkModel
from repro.core.balancer import LoadBalancer
from repro.core.database import LBView, Migration
from repro.telemetry.audit import REASON_GAIN_BELOW_COST, REJECTED
from repro.util import check_positive

__all__ = ["MigrationCostAwareLB"]


class MigrationCostAwareLB(LoadBalancer):
    """Gate an inner balancer's migrations on predicted net benefit.

    Parameters
    ----------
    inner:
        The strategy producing candidate migrations.
    net:
        Network model used to price the transfers.
    safety_factor:
        Required gain/cost ratio (>1 demands a margin before migrating).
    """

    def __init__(
        self,
        inner: LoadBalancer,
        net: NetworkModel,
        *,
        safety_factor: float = 1.0,
    ) -> None:
        check_positive("safety_factor", safety_factor)
        self.inner = inner
        self.net = net
        self.safety_factor = float(safety_factor)
        self.name = f"migcost({inner.name})"
        #: count of LB steps whose migrations were suppressed by the gate
        self.suppressed_steps = 0

    def audit_thresholds(self, view: LBView):
        """Report the deciding (inner) strategy's thresholds."""
        return self.inner.audit_thresholds(view)

    # ------------------------------------------------------------------
    def decide(self, view: LBView) -> List[Migration]:
        self._lend_audit_buffer(self.inner)
        try:
            migrations = self.inner.balance(view)
        finally:
            self._reclaim_audit_buffer(self.inner)
        if not migrations:
            return []
        gain = self.predicted_gain(view, migrations)
        cost = self.migration_cost(view, migrations)
        if gain < self.safety_factor * cost:
            self.suppressed_steps += 1
            cpu = {t.chare: t.cpu_time for c in view.cores for t in c.tasks}
            for m in migrations:
                self.note_candidate(
                    m.chare, m.src, m.dst, cpu.get(m.chare),
                    REJECTED, REASON_GAIN_BELOW_COST,
                )
            return []
        return migrations

    # ------------------------------------------------------------------
    # prediction helpers (public: benchmarks introspect them)
    # ------------------------------------------------------------------
    @staticmethod
    def predicted_gain(view: LBView, migrations: Sequence[Migration]) -> float:
        """Drop in max per-core load over the next window (persistence).

        The iteration time of a tightly coupled application is bounded by
        its most loaded core, so the max-load drop is the wall-clock the
        next window is expected to save.
        """
        load: Dict[int, float] = {c.core_id: c.total_load for c in view.cores}
        before = max(load.values(), default=0.0)
        task_time = {t.chare: t.cpu_time for c in view.cores for t in c.tasks}
        for m in migrations:
            load[m.src] -= task_time[m.chare]
            load[m.dst] += task_time[m.chare]
        after = max(load.values(), default=0.0)
        return max(before - after, 0.0)

    def migration_cost(
        self, view: LBView, migrations: Sequence[Migration]
    ) -> float:
        """Wall-clock cost of the transfers (per-core serialisation)."""
        size = {t.chare: t.state_bytes for c in view.cores for t in c.tasks}
        per_core: Dict[int, float] = {}
        for m in migrations:
            t = self.net.migration_time(size[m.chare])
            per_core[m.src] = per_core.get(m.src, 0.0) + t
            per_core[m.dst] = per_core.get(m.dst, 0.0) + t
        return max(per_core.values(), default=0.0)

"""The null balancer — the paper's "noLB" series.

Keeping the initial static mapping for the whole run is exactly what a
conventional (non-migratable) MPI execution does, and is the baseline
every figure in the paper compares against.
"""

from __future__ import annotations

from typing import List

from repro.core.balancer import LoadBalancer
from repro.core.database import LBView, Migration

__all__ = ["NoLB"]


class NoLB(LoadBalancer):
    """Never migrates anything."""

    name = "nolb"

    def decide(self, view: LBView) -> List[Migration]:
        return []

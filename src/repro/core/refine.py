"""Classic refinement balancing — interference-*oblivious*.

This is what the Charm++ LB framework offered before the paper: refine the
mapping using only the application's own measured task times. It restores
*internal* load balance but is blind to co-located VMs, so a core that
loses half its cycles to an interferer still looks perfectly average.
It exists here as the key ablation: the paper's entire delta is adding
O_p to the load model, so comparing :class:`RefineLB` with
:class:`~repro.core.interference.RefineVMInterferenceLB` isolates that
contribution (benchmark ABL-AWARE).
"""

from __future__ import annotations

from repro.core.interference import RefineVMInterferenceLB

__all__ = ["RefineLB"]


class RefineLB(RefineVMInterferenceLB):
    """Refinement using task times only (``use_bg_load=False``)."""

    name = "refine"

    def __init__(self, epsilon: float = 0.05, *, absolute_epsilon: bool = False) -> None:
        super().__init__(
            epsilon, use_bg_load=False, absolute_epsilon=absolute_epsilon
        )

"""Greedy from-scratch balancing (Charm++ GreedyLB analogue).

Sorts all tasks by measured time, biggest first, and assigns each to the
currently least-loaded core. Achieves near-perfect balance but ignores the
current placement, so it migrates far more objects than refinement — the
contrast the paper draws with Brunner & Kalé's earlier scheme ("a refined
load balancing algorithm that achieves load balance **while minimizing
task migrations**"). Benchmark ABL-AWARE quantifies that migration-count
difference.

The ``aware`` flag seeds each core's starting load with its background
load O_p, giving an interference-aware greedy variant for comparison.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.core.balancer import LoadBalancer
from repro.core.database import LBView, Migration
from repro.perf.profiler import active as _profiler
from repro.telemetry.audit import (
    ACCEPTED,
    NOTED,
    REASON_ALREADY_LEAST_LOADED,
    REASON_GREEDY_LEAST_LOADED,
)

__all__ = ["GreedyLB"]


class GreedyLB(LoadBalancer):
    """Rebuild the whole mapping greedily at every LB step.

    Parameters
    ----------
    aware:
        When True, core loads start at O_p instead of zero, so heavily
        interfered cores receive proportionally less work.
    """

    name = "greedy"

    def __init__(self, *, aware: bool = False) -> None:
        self.aware = bool(aware)
        if aware:
            self.name = "greedy-aware"

    def decide(self, view: LBView) -> List[Migration]:
        current = view.task_map()
        with _profiler().phase("lb.greedy.sort"):
            all_tasks = sorted(
                (t for c in view.cores for t in c.tasks),
                key=lambda t: (-t.cpu_time, t.chare),
            )
        # min-heap of (load, core_id)
        heap = [
            ((c.bg_load if self.aware else 0.0), c.core_id) for c in view.cores
        ]
        heapq.heapify(heap)
        migrations: List[Migration] = []
        for task in all_tasks:
            load, cid = heapq.heappop(heap)
            if current[task.chare] != cid:
                migrations.append(
                    Migration(chare=task.chare, src=current[task.chare], dst=cid)
                )
                self.note_candidate(
                    task.chare, current[task.chare], cid, task.cpu_time,
                    ACCEPTED, REASON_GREEDY_LEAST_LOADED,
                )
            else:
                self.note_candidate(
                    task.chare, cid, cid, task.cpu_time,
                    NOTED, REASON_ALREADY_LEAST_LOADED,
                )
            heapq.heappush(heap, (load + task.cpu_time, cid))
        return migrations

"""The load-balancing database: what a balancer is allowed to see.

Charm++'s LB framework instruments every entry-method execution and hands
strategies a per-processor summary. We mirror that contract:

* :class:`TaskRecord` — one migratable object: measured CPU time over the
  last LB window plus its serialised size (migration cost input).
* :class:`CoreLoad` — one core: its task records and the Eq.-(2)
  background load ``O_p``.
* :class:`LBView` — the whole picture at one LB step, immutable, with the
  paper's Eq. (1) average ``T_avg`` as a property.
* :class:`Migration` — one decision: move ``chare`` from ``src`` to ``dst``.
* :class:`LBDatabase` — the runtime-side accumulator that builds views:
  it sums per-chare CPU between LB steps and derives O_p from
  ``/proc/stat`` snapshots (never from simulator ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sim.procstat import CoreStatSnapshot, ProcStat
from repro.util import check_non_negative

__all__ = ["TaskRecord", "CoreLoad", "LBView", "Migration", "LBDatabase"]

ChareKey = Tuple[str, int]  #: (array name, index) — hashable chare identity

_INF = float("inf")


@dataclass(frozen=True)
class TaskRecord:
    """One migratable task as the balancer sees it.

    Attributes
    ----------
    chare:
        Identity ``(array_name, index)``.
    cpu_time:
        t_i^p — CPU-seconds this task consumed during the LB window.
    state_bytes:
        Serialised state size; determines migration cost.
    comm:
        Recorded communication partners: ``((other_chare, bytes), ...)``
        per iteration. Empty unless the runtime was given a
        :class:`~repro.runtime.commgraph.CommGraph`. Communication-aware
        strategies read this — never the graph itself — preserving the
        rule that balancers see only the instrumentation database.
    """

    chare: ChareKey
    cpu_time: float
    state_bytes: float = 0.0
    comm: Tuple[Tuple[ChareKey, float], ...] = ()

    def __post_init__(self) -> None:
        # constructed per chare per LB step: inline comparisons accept the
        # common case; the full checkers handle everything else
        if (
            type(self.cpu_time) is float
            and 0.0 <= self.cpu_time < _INF
            and type(self.state_bytes) is float
            and 0.0 <= self.state_bytes < _INF
        ):
            pass
        else:
            check_non_negative("cpu_time", self.cpu_time)
            check_non_negative("state_bytes", self.state_bytes)
        for other, nbytes in self.comm:
            if nbytes < 0:
                raise ValueError(
                    f"negative comm volume {nbytes} to {other} on {self.chare}"
                )


@dataclass(frozen=True)
class CoreLoad:
    """One core's instrumented state at an LB step.

    Attributes
    ----------
    core_id:
        Global core id.
    tasks:
        Task records currently mapped to this core.
    bg_load:
        O_p from Eq. (2): CPU-seconds the core spent on work external to
        the application during the window.
    """

    core_id: int
    tasks: Tuple[TaskRecord, ...]
    bg_load: float = 0.0

    def __post_init__(self) -> None:
        if not (type(self.bg_load) is float and 0.0 <= self.bg_load < _INF):
            check_non_negative("bg_load", self.bg_load)

    @property
    def task_time(self) -> float:
        """Σ_i t_i^p — instrumented task CPU time on this core."""
        return sum(t.cpu_time for t in self.tasks)

    @property
    def total_load(self) -> float:
        """Σ_i t_i^p + O_p — the load Algorithm 1 compares to T_avg."""
        return self.task_time + self.bg_load


@dataclass(frozen=True)
class LBView:
    """Immutable snapshot handed to a load balancer at one LB step.

    Attributes
    ----------
    cores:
        Per-core loads, one entry per core the application runs on.
    window:
        T_lb — wall-clock seconds since the previous LB step.
    """

    cores: Tuple[CoreLoad, ...]
    window: float

    def __post_init__(self) -> None:
        check_non_negative("window", self.window)
        seen = set()
        for c in self.cores:
            if c.core_id in seen:
                raise ValueError(f"duplicate core_id {c.core_id} in LBView")
            seen.add(c.core_id)

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def t_avg(self) -> float:
        """Eq. (1): average per-core load including background loads."""
        if not self.cores:
            return 0.0
        return sum(c.total_load for c in self.cores) / len(self.cores)

    def core(self, core_id: int) -> CoreLoad:
        """The :class:`CoreLoad` for ``core_id``."""
        for c in self.cores:
            if c.core_id == core_id:
                return c
        raise KeyError(f"core {core_id} not in view")

    def task_map(self) -> Dict[ChareKey, int]:
        """chare -> core_id mapping implied by the view."""
        return {t.chare: c.core_id for c in self.cores for t in c.tasks}


@dataclass(frozen=True)
class Migration:
    """One balancer decision: move ``chare`` from core ``src`` to ``dst``."""

    chare: ChareKey
    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"migration of {self.chare} to its own core {self.src}")


def validate_migrations(view: LBView, migrations: Sequence[Migration]) -> None:
    """Raise ``ValueError`` unless ``migrations`` are consistent with ``view``.

    Checks: every chare exists, its ``src`` matches the view's mapping, the
    destination core is part of the view, and no chare moves twice.
    """
    mapping = view.task_map()
    valid_cores = {c.core_id for c in view.cores}
    moved = set()
    for m in migrations:
        if m.chare not in mapping:
            raise ValueError(f"migration of unknown chare {m.chare}")
        if mapping[m.chare] != m.src:
            raise ValueError(
                f"chare {m.chare} is on core {mapping[m.chare]}, not {m.src}"
            )
        if m.dst not in valid_cores:
            raise ValueError(f"migration targets core {m.dst} outside the job")
        if m.chare in moved:
            raise ValueError(f"chare {m.chare} migrated twice in one step")
        moved.add(m.chare)


class LBDatabase:
    """Runtime-side accumulator building :class:`LBView` snapshots.

    Between LB steps the runtime calls :meth:`record_task` after every
    entry-method completion. At an LB step, :meth:`build_view` combines the
    accumulated per-chare CPU times with ``/proc/stat`` deltas to compute
    each core's O_p (Eq. 2), then :meth:`reset_window` starts the next
    window.

    Parameters
    ----------
    procstat:
        OS-counter view restricted to the application's cores and owner tag.
    state_bytes:
        chare -> serialised size used for migration-cost-aware balancing.
    """

    def __init__(
        self,
        procstat: ProcStat,
        state_bytes: Optional[Mapping[ChareKey, float]] = None,
        comm: Optional[Mapping[ChareKey, Mapping[ChareKey, float]]] = None,
    ) -> None:
        self._procstat = procstat
        self._state_bytes: Dict[ChareKey, float] = dict(state_bytes or {})
        self._comm: Dict[ChareKey, Tuple[Tuple[ChareKey, float], ...]] = {
            chare: tuple(sorted(partners.items()))
            for chare, partners in (comm or {}).items()
        }
        self._task_cpu: Dict[ChareKey, float] = {}
        self._window_start: Dict[int, CoreStatSnapshot] = procstat.snapshot_all()
        self._window_started_at = min(
            (s.time for s in self._window_start.values()), default=0.0
        )

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def record_task(self, chare: ChareKey, cpu_time: float) -> None:
        """Add one entry-method execution's CPU time to the window."""
        # hot path (one call per task execution): validate with two inline
        # comparisons; defer to the full checker only to raise
        if not (type(cpu_time) is float and 0.0 <= cpu_time < _INF):
            check_non_negative("cpu_time", cpu_time)
        self._task_cpu[chare] = self._task_cpu.get(chare, 0.0) + cpu_time

    def set_state_bytes(self, chare: ChareKey, nbytes: float) -> None:
        """Register/refresh a chare's serialised size."""
        check_non_negative("nbytes", nbytes)
        self._state_bytes[chare] = nbytes

    # ------------------------------------------------------------------
    # view construction
    # ------------------------------------------------------------------
    def build_view(self, mapping: Mapping[ChareKey, int]) -> LBView:
        """Snapshot the current window as an :class:`LBView`.

        Parameters
        ----------
        mapping:
            Current chare -> core assignment from the runtime.
        """
        snaps = self._procstat.snapshot_all()
        per_core_tasks: Dict[int, List[TaskRecord]] = {
            cid: [] for cid in self._procstat.core_ids()
        }
        for chare, core_id in mapping.items():
            if core_id not in per_core_tasks:
                raise ValueError(
                    f"chare {chare} mapped to core {core_id} outside the job"
                )
            per_core_tasks[core_id].append(
                TaskRecord(
                    chare=chare,
                    cpu_time=self._task_cpu.get(chare, 0.0),
                    state_bytes=self._state_bytes.get(chare, 0.0),
                    comm=self._comm.get(chare, ()),
                )
            )
        cores = []
        window = 0.0
        for cid in self._procstat.core_ids():
            delta = snaps[cid].delta(self._window_start[cid])
            window = max(window, delta.time)
            tasks = tuple(sorted(per_core_tasks[cid], key=lambda t: t.chare))
            task_sum = sum(t.cpu_time for t in tasks)
            bg = ProcStat.background_load(delta, task_sum)
            cores.append(CoreLoad(core_id=cid, tasks=tasks, bg_load=bg))
        return LBView(cores=tuple(cores), window=window)

    def reset_window(self) -> None:
        """Zero the per-chare accumulators and re-baseline ``/proc/stat``."""
        self._task_cpu.clear()
        self._window_start = self._procstat.snapshot_all()

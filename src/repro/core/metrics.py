"""Imbalance and migration metrics.

Small pure functions over :class:`~repro.core.database.LBView` used by
tests, benchmarks, and the experiment tables: how unbalanced is a mapping,
does it satisfy the paper's Eq. (3), how much data would a migration set
move.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.database import LBView, Migration

__all__ = [
    "max_load",
    "imbalance_ratio",
    "within_epsilon",
    "migration_volume_bytes",
]


def max_load(view: LBView) -> float:
    """Largest per-core total load (task time + O_p)."""
    return max((c.total_load for c in view.cores), default=0.0)


def imbalance_ratio(view: LBView) -> float:
    """``max_load / t_avg`` — 1.0 is perfect balance.

    This is the standard Charm++ imbalance metric; for a tightly coupled
    application it is also the slowdown factor relative to ideal balance.
    """
    t_avg = view.t_avg
    if t_avg <= 0.0:
        return 1.0
    return max_load(view) / t_avg


def within_epsilon(view: LBView, epsilon: float, *, absolute: bool = False) -> bool:
    """Does every core satisfy the paper's Eq. (3)?

    ``|load_p − T_avg| < ε`` for all p, with ε a fraction of T_avg by
    default (absolute seconds when ``absolute=True``).
    """
    t_avg = view.t_avg
    eps = epsilon if absolute else epsilon * t_avg
    return all(abs(c.total_load - t_avg) <= eps for c in view.cores)


def migration_volume_bytes(view: LBView, migrations: Sequence[Migration]) -> float:
    """Total serialised bytes a migration set would transfer."""
    size = {t.chare: t.state_bytes for c in view.cores for t in c.tasks}
    return sum(size[m.chare] for m in migrations)

"""Load balancing — the paper's primary contribution.

The central class is :class:`RefineVMInterferenceLB`
(:mod:`repro.core.interference`), a line-by-line implementation of the
paper's Algorithm 1: refinement load balancing that accounts for the
*background load* ``O_p`` a core loses to co-located interfering jobs.

Everything a balancer sees is an immutable :class:`LBView`
(:mod:`repro.core.database`): per-core task CPU times from the runtime's
instrumentation plus the Eq.-(2) background loads derived from
``/proc/stat`` counters. Balancers return :class:`Migration` decisions;
the runtime applies them and charges migration costs.

Baselines and extensions:

* :class:`NoLB` — never migrates (the paper's "noLB" series).
* :class:`RefineLB` — classic Charm++-style refinement, *ignoring* O_p
  (what existed before the paper; the ablation baseline).
* :class:`GreedyLB` — rebuild-from-scratch greedy assignment.
* :class:`MigrationCostAwareLB` — wraps any balancer and drops migrations
  whose predicted gain cannot offset their transfer cost: the strategy the
  paper sketches as future work in §VI.
"""

from repro.core.database import (
    CoreLoad,
    LBDatabase,
    LBView,
    Migration,
    TaskRecord,
)
from repro.core.balancer import LoadBalancer
from repro.core.nolb import NoLB
from repro.core.refine import RefineLB
from repro.core.greedy import GreedyLB
from repro.core.interference import RefineVMInterferenceLB
from repro.core.commaware import CommAwareRefineLB
from repro.core.hierarchical import HierarchicalLB
from repro.core.migration_cost import MigrationCostAwareLB
from repro.core.policies import AdaptiveLBPolicy, LBPolicy
from repro.core.serialize import (
    dump_view,
    load_view,
    migrations_from_dict,
    migrations_to_dict,
    view_from_dict,
    view_to_dict,
)
from repro.core.metrics import (
    imbalance_ratio,
    max_load,
    migration_volume_bytes,
    within_epsilon,
)

__all__ = [
    "TaskRecord",
    "CoreLoad",
    "LBView",
    "Migration",
    "LBDatabase",
    "LoadBalancer",
    "NoLB",
    "RefineLB",
    "GreedyLB",
    "RefineVMInterferenceLB",
    "CommAwareRefineLB",
    "HierarchicalLB",
    "MigrationCostAwareLB",
    "LBPolicy",
    "AdaptiveLBPolicy",
    "imbalance_ratio",
    "max_load",
    "migration_volume_bytes",
    "within_epsilon",
    "view_to_dict",
    "view_from_dict",
    "migrations_to_dict",
    "migrations_from_dict",
    "dump_view",
    "load_view",
]

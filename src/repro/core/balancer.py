"""Load balancer interface.

A balancer is a pure strategy: :class:`LBView` in, migrations out. All
state the paper's algorithm needs (measured task times, background loads)
is in the view; balancers must not reach into the runtime or simulator.
That mirrors Charm++'s strategy plug-in contract ("Programmers can add
their own application or platform specific strategy to the load balancing
framework") and is what lets the benchmarks swap strategies freely.

Telemetry hook
--------------
:meth:`LoadBalancer.balance` doubles as the **audit hook** of the
telemetry layer: when a sink is attached (:meth:`attach_telemetry` —
the runtime does this when constructed with ``telemetry=...``), every
step emits one structured record capturing the view, the thresholds the
strategy used (:meth:`audit_thresholds`), and every candidate migration
the strategy considered (:meth:`note_candidate`, called from strategy
internals) with its accept/reject reason. With no sink attached the hook
collapses to a ``None`` check per step and a ``None`` check per
``note_candidate`` call — strategies stay unconditional and pay nothing.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.database import ChareKey, LBView, Migration, validate_migrations
from repro.perf.profiler import active as _profiler
from repro.util import get_logger

__all__ = ["LoadBalancer"]

_log = get_logger(__name__)


class LoadBalancer(abc.ABC):
    """Strategy interface: decide migrations from an instrumented view."""

    #: Human-readable strategy name (used in benchmark tables).
    name: str = "base"

    #: Telemetry sink (``on_step`` protocol) attached by the runtime.
    #: Class-level default keeps strategy ``__init__`` signatures free.
    _audit_sink: Optional[Any] = None

    #: Per-step candidate buffer; non-None only while an audited
    #: :meth:`balance` (or a wrapper lending its buffer) is in flight.
    _step_candidates: Optional[List[Dict[str, Any]]] = None

    @abc.abstractmethod
    def decide(self, view: LBView) -> List[Migration]:
        """Return the migrations to apply for this LB step.

        Implementations must be deterministic and side-effect free with
        respect to the view.
        """

    # ------------------------------------------------------------------
    # telemetry hook
    # ------------------------------------------------------------------
    def attach_telemetry(self, sink: Optional[Any]) -> None:
        """Attach (or detach, with None) the audit sink for this strategy.

        The sink must expose ``on_step(strategy=, view=, migrations=,
        candidates=, t_avg=, epsilon_s=, decide_wall_s=)`` —
        :class:`repro.telemetry.Telemetry` does.
        """
        self._audit_sink = sink

    def audit_thresholds(self, view: LBView) -> Tuple[float, Optional[float]]:
        """``(t_avg, epsilon_seconds)`` as this strategy computed them.

        The base implementation reports the view's Eq. (1) average and no
        ε (strategies without a slack band). Refinement-family strategies
        override this with their own load model's numbers.
        """
        return view.t_avg, None

    def note_candidate(
        self,
        chare: Optional[ChareKey],
        src: Optional[int],
        dst: Optional[int],
        cpu_time: Optional[float],
        outcome: str,
        reason: str,
    ) -> None:
        """Record one considered migration (no-op unless audited)."""
        buf = self._step_candidates
        if buf is not None:
            buf.append(
                {
                    "chare": None if chare is None else [chare[0], int(chare[1])],
                    "src": src,
                    "dst": dst,
                    "cpu_time": cpu_time,
                    "outcome": outcome,
                    "reason": reason,
                }
            )

    def _lend_audit_buffer(self, inner: "LoadBalancer") -> None:
        """Share this strategy's candidate buffer with a wrapped strategy.

        Composite strategies (hierarchical, migration-cost gating) call
        their inner strategy's :meth:`balance`; lending the buffer makes
        the inner strategy's ``note_candidate`` calls land in the outer
        step's record instead of vanishing. Pair with
        :meth:`_reclaim_audit_buffer` in a ``finally``.
        """
        inner._step_candidates = self._step_candidates

    @staticmethod
    def _reclaim_audit_buffer(inner: "LoadBalancer") -> None:
        inner._step_candidates = None

    # ------------------------------------------------------------------
    def balance(self, view: LBView) -> List[Migration]:
        """Decide and validate. This is what the runtime calls.

        Wraps :meth:`decide` with consistency checks so a buggy strategy
        fails loudly instead of corrupting the object mapping, and — when
        a telemetry sink is attached — emits the step's audit record.
        """
        sink = self._audit_sink
        if sink is None:
            with _profiler().phase("lb.decide"):
                migrations = self.decide(view)
            validate_migrations(view, migrations)
            return migrations

        self._step_candidates = []
        t0 = time.perf_counter()
        try:
            with _profiler().phase("lb.decide"):
                migrations = self.decide(view)
        finally:
            candidates, self._step_candidates = self._step_candidates, None
        decide_wall_s = time.perf_counter() - t0
        validate_migrations(view, migrations)
        t_avg, epsilon_s = self.audit_thresholds(view)
        sink.on_step(
            strategy=self.name,
            view=view,
            migrations=migrations,
            candidates=candidates,
            t_avg=t_avg,
            epsilon_s=epsilon_s,
            decide_wall_s=decide_wall_s,
        )
        _log.debug(
            "%s: audited LB step -> %d migrations, %d candidates",
            self.name,
            len(migrations),
            len(candidates),
        )
        return migrations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

"""Load balancer interface.

A balancer is a pure strategy: :class:`LBView` in, migrations out. All
state the paper's algorithm needs (measured task times, background loads)
is in the view; balancers must not reach into the runtime or simulator.
That mirrors Charm++'s strategy plug-in contract ("Programmers can add
their own application or platform specific strategy to the load balancing
framework") and is what lets the benchmarks swap strategies freely.
"""

from __future__ import annotations

import abc
from typing import List

from repro.core.database import LBView, Migration, validate_migrations

__all__ = ["LoadBalancer"]


class LoadBalancer(abc.ABC):
    """Strategy interface: decide migrations from an instrumented view."""

    #: Human-readable strategy name (used in benchmark tables).
    name: str = "base"

    @abc.abstractmethod
    def decide(self, view: LBView) -> List[Migration]:
        """Return the migrations to apply for this LB step.

        Implementations must be deterministic and side-effect free with
        respect to the view.
        """

    def balance(self, view: LBView) -> List[Migration]:
        """Decide and validate. This is what the runtime calls.

        Wraps :meth:`decide` with consistency checks so a buggy strategy
        fails loudly instead of corrupting the object mapping.
        """
        migrations = self.decide(view)
        validate_migrations(view, migrations)
        return migrations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

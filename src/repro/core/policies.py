"""When and how the runtime invokes the balancer.

The paper balances *periodically* ("do periodic checks on the state of
load balance"). :class:`LBPolicy` captures that cadence plus the runtime
costs charged per step, keeping them out of the strategy classes (which
stay pure functions of the view).

:class:`AdaptiveLBPolicy` is an extension beyond the paper (in the
spirit of Charm++'s later MetaLB work): it watches the measured
per-iteration imbalance and triggers a step as soon as interference is
*observed*, rather than waiting for the next period boundary — with the
periodic schedule kept as a fallback heartbeat. Benchmark ABL-ADAPTIVE
quantifies the reaction-latency/overhead trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util import check_non_negative, check_positive

__all__ = ["LBPolicy", "AdaptiveLBPolicy"]


@dataclass(frozen=True)
class LBPolicy:
    """Cadence and cost parameters for periodic load balancing.

    Attributes
    ----------
    period_iterations:
        Invoke the balancer every this many iterations.
    skip_first:
        Number of leading iterations exempt from balancing (lets the first
        instrumentation window fill; Charm++ behaves likewise).
    decision_overhead_s:
        Wall-clock charged for running the strategy itself at each step
        (the centralised gather + algorithm time on the master core).
    """

    period_iterations: int = 10
    skip_first: int = 0
    decision_overhead_s: float = 1e-3

    def __post_init__(self) -> None:
        check_positive("period_iterations", self.period_iterations)
        check_non_negative("skip_first", self.skip_first)
        check_non_negative("decision_overhead_s", self.decision_overhead_s)

    def due(
        self,
        completed_iteration: int,
        total_iterations: int,
        *,
        imbalance: Optional[float] = None,
        since_last_lb: Optional[int] = None,
    ) -> bool:
        """Should an LB step run after ``completed_iteration`` finished?

        Iterations are counted from 1. Balancing after the final iteration
        is pointless and never signalled. The runtime also passes the
        measured per-iteration ``imbalance`` (max over cores of the
        iteration wall share, divided by the mean) and the number of
        iterations ``since_last_lb``; the periodic policy ignores both —
        they exist for adaptive subclasses.
        """
        if completed_iteration >= total_iterations:
            return False
        if completed_iteration <= self.skip_first:
            return False
        return (completed_iteration - self.skip_first) % self.period_iterations == 0


@dataclass(frozen=True)
class AdaptiveLBPolicy(LBPolicy):
    """Imbalance-triggered balancing with a periodic fallback.

    Triggers a step when the last iteration's measured imbalance ratio
    (slowest core's wall share over the mean) exceeds
    ``imbalance_threshold`` — i.e. as soon as interference visibly skews
    an iteration — but never more often than every
    ``min_gap_iterations``. The inherited ``period_iterations`` still
    fires as a heartbeat, catching slow drift the threshold misses.

    Attributes
    ----------
    imbalance_threshold:
        Trigger level for max/mean per-core iteration wall time
        (1.0 = perfectly balanced; interference at fair sharing pushes
        the interfered core toward 2.0).
    min_gap_iterations:
        Minimum iterations between steps, so one disturbance does not
        cause a burst of migrations before its effect is measured.
    """

    imbalance_threshold: float = 1.25
    min_gap_iterations: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.imbalance_threshold < 1.0:
            raise ValueError(
                f"imbalance_threshold must be >= 1.0, got {self.imbalance_threshold}"
            )
        check_positive("min_gap_iterations", self.min_gap_iterations)

    def due(
        self,
        completed_iteration: int,
        total_iterations: int,
        *,
        imbalance: Optional[float] = None,
        since_last_lb: Optional[int] = None,
    ) -> bool:
        if completed_iteration >= total_iterations:
            return False
        if completed_iteration <= self.skip_first:
            return False
        if since_last_lb is not None and since_last_lb < self.min_gap_iterations:
            return False
        if imbalance is not None and imbalance > self.imbalance_threshold:
            return True
        return super().due(completed_iteration, total_iterations)

"""Communication-aware refinement — locality-preserving receiver choice.

An extension in the direction of the paper's §VI future work ("due to the
inferior performance of network..."): Algorithm 1's correctness comes
from *which tasks leave* an interfered core; it leaves freedom in *where
they land*. :class:`CommAwareRefineLB` keeps the paper's donor selection,
biggest-task ordering, and the Eq.-(3) receiver constraint, but among the
feasible underloaded receivers it picks the one to which the migrating
task has the most recorded communication (falling back to least-loaded,
exactly the base behaviour, when the task has no recorded partners).

The strategy reads only the instrumentation database — each
:class:`~repro.core.database.TaskRecord`'s recorded ``comm`` partners —
never the application's communication graph directly, preserving the
Charm++ contract. It pays off when the runtime's communication delay is
mapping-dependent (``Runtime(comm_graph=...)``): landing a stencil strip
next to its halo partner keeps that edge off the wire. Benchmark
ABL-COMM measures the delta on a degraded (virtualised) network.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.database import ChareKey, TaskRecord
from repro.core.interference import RefineVMInterferenceLB
from repro.perf.profiler import active as _profiler
from repro.telemetry.audit import (
    ACCEPTED,
    REASON_ACCEPTED,
    REASON_NO_UNDERLOADED_TARGET,
    REASON_RECEIVER_WOULD_EXCEED,
    REASON_ZERO_CPU_TASK,
    REJECTED,
)

__all__ = ["CommAwareRefineLB"]


class CommAwareRefineLB(RefineVMInterferenceLB):
    """Algorithm 1 with locality-preserving receiver selection.

    Parameters
    ----------
    epsilon, use_bg_load, absolute_epsilon:
        As in :class:`RefineVMInterferenceLB`.
    """

    name = "refine-vm-interference-comm"

    def _best_core_and_task(
        self,
        donor: int,
        donor_tasks: List[TaskRecord],
        load: Dict[int, float],
        underset: Dict[int, bool],
        t_avg: float,
        eps: float,
        *,
        location: Optional[Dict[ChareKey, int]] = None,
    ) -> Optional[Tuple[TaskRecord, int]]:
        """Biggest task first; receiver with the most affinity bytes.

        Feasibility (receiver must not become overloaded) is identical to
        the base algorithm; only the ranking among feasible receivers
        changes: descending bytes the task exchanges with chares already
        on that receiver, then ascending load, then core id.
        """
        if not underset:
            self.note_candidate(
                None, donor, None, None, REJECTED, REASON_NO_UNDERLOADED_TARGET
            )
            return None
        for task in donor_tasks:
            if task.cpu_time <= 0.0:
                self.note_candidate(
                    task.chare, donor, None, task.cpu_time,
                    REJECTED, REASON_ZERO_CPU_TASK,
                )
                break
            feasible = [
                cid
                for cid in underset
                if load[cid] + task.cpu_time - t_avg <= eps
            ]
            if not feasible:
                self.note_candidate(
                    task.chare, donor, None, task.cpu_time,
                    REJECTED, REASON_RECEIVER_WOULD_EXCEED,
                )
                continue
            # the affinity ranking is this strategy's only extra work
            # over the base algorithm, so it gets its own phase
            with _profiler().phase("lb.commaware.affinity"):
                affinity: Dict[int, float] = {cid: 0.0 for cid in feasible}
                if location is not None:
                    for other, nbytes in task.comm:
                        cid = location.get(other)
                        if cid in affinity:
                            affinity[cid] += nbytes
                feasible.sort(key=lambda cid: (-affinity[cid], load[cid], cid))
            self.note_candidate(
                task.chare, donor, feasible[0], task.cpu_time,
                ACCEPTED, REASON_ACCEPTED,
            )
            return task, feasible[0]
        return None

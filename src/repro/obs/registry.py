"""The cross-run registry: every sweep/bench run, queryable forever.

Per-run artifacts (sweep tables, audit JSONL, bench trajectory entries)
answer "what happened in *this* run"; nothing before this module
answered "what happened *across* runs" — which is where drift, outliers
and regressions live. The registry is an append-only store under
``results/registry/`` (override with ``REPRO_REGISTRY_DIR``):

* ``runs/<run_id>.json`` — one full record per ingested run: config,
  git SHA, code fingerprint, environment fingerprint, per-point seeds
  and metrics, audit summaries, artifact paths;
* ``runs.jsonl`` — an append-only JSONL index (one line per run) for
  cheap listing without reading every record.

Records are written atomically (tmp + rename) and the index is append-
only, so concurrent sweeps can ingest safely and a killed writer can
never corrupt history. Reading tolerates a truncated final index line
(the audit-reader policy) and re-derives missing index lines from the
``runs/`` directory, so the index is a cache of the records, never the
source of truth.

Everything is queryable via ``repro runs list/show/diff/check`` (see
:mod:`repro.cli`) and feeds the anomaly detectors
(:mod:`repro.obs.anomaly`) and the HTML report
(:mod:`repro.obs.report`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.experiments.cache import canonical_json, code_fingerprint
from repro.util import get_logger, git_sha, utc_timestamp

__all__ = [
    "RUN_SCHEMA",
    "default_registry_dir",
    "RunRegistry",
    "diff_runs",
]

#: Version stamp on every registry record; bump on incompatible changes.
RUN_SCHEMA = 1

_log = get_logger(__name__)


def default_registry_dir() -> Path:
    """``REPRO_REGISTRY_DIR`` if set, else ``results/registry`` in cwd."""
    env = os.environ.get("REPRO_REGISTRY_DIR")
    if env:
        return Path(env)
    return Path.cwd() / "results" / "registry"


def _atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class RunRegistry:
    """Append-only store of run records under one directory.

    Parameters
    ----------
    root:
        Registry directory (created lazily on first ingest).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / "runs.jsonl"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def _run_path(self, run_id: str) -> Path:
        return self.runs_dir / f"{run_id}.json"

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def _new_run_id(self, kind: str, name: str, created_utc: str, content: Any) -> str:
        digest = hashlib.sha256(
            canonical_json([created_utc, kind, name, content]).encode()
        ).hexdigest()[:8]
        stamp = created_utc.replace("-", "").replace(":", "")
        base = f"{stamp}-{kind}-{digest}"
        run_id, n = base, 1
        while self._run_path(run_id).exists():  # same second, same content
            run_id = f"{base}-{n}"
            n += 1
        return run_id

    def _append_index(self, record: Mapping[str, Any]) -> None:
        line = {
            "schema": RUN_SCHEMA,
            "run_id": record["run_id"],
            "kind": record["kind"],
            "name": record["name"],
            "created_utc": record["created_utc"],
            "git_sha": record["git_sha"],
            "points": len(record.get("points", ())),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.index_path, "a") as fh:
            fh.write(json.dumps(line, sort_keys=True) + "\n")

    def _ingest(self, record: Dict[str, Any]) -> Dict[str, Any]:
        _atomic_write_json(self._run_path(record["run_id"]), record)
        self._append_index(record)
        _log.info("registered run %s (%s)", record["run_id"], record["kind"])
        return record

    def ingest_sweep(
        self,
        spec: "SweepSpec",
        result: "SweepResult",
        *,
        artifacts: Optional[Mapping[str, Any]] = None,
        created_utc: Optional[str] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Record one completed sweep; returns the stored record.

        ``artifacts`` maps artifact kinds to paths (``audit_dir``,
        ``jsonl``, ``output`` — whatever the caller wrote); paths are
        stored as strings, never resolved or read back.

        ``extra`` merges additional driver-specific top-level sections
        into the record (the fabric coordinator attaches its ``fabric``
        health block this way); reserved record keys are never
        clobbered.
        """
        from repro.perf.bench import environment_fingerprint

        created = created_utc or utc_timestamp()
        points = [
            {
                "label": r.label,
                "key": r.key,
                "seed": r.params.get("seed"),
                "params": dict(r.params),
                "cached": r.cached,
                "worker": r.worker,
                "wall_s": r.wall_s,
                "summary": r.summary.to_dict(),
                "audit": r.audit,
                "ledger": r.ledger,
                "lineage": r.lineage,
            }
            for r in result.results
        ]
        record: Dict[str, Any] = {
            "schema": RUN_SCHEMA,
            "kind": "sweep",
            "name": spec.name,
            "created_utc": created,
            "git_sha": git_sha(),
            "code_fingerprint": code_fingerprint()[:16],
            "env": environment_fingerprint(),
            "spec": spec.to_dict(),
            "metrics": result.metrics.to_dict(),
            "points": points,
            "artifacts": {
                k: (None if v is None else str(v))
                for k, v in (artifacts or {}).items()
            },
        }
        if extra:
            for key, value in extra.items():
                if key not in record:
                    record[key] = value
        record["run_id"] = self._new_run_id(
            "sweep", spec.name, created, [p["key"] for p in points]
        )
        return self._ingest(record)

    def ingest_bench(
        self,
        result: Mapping[str, Any],
        *,
        artifacts: Optional[Mapping[str, Any]] = None,
        created_utc: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Record one ``repro bench`` result dict; returns the record."""
        created = created_utc or result.get("created_utc") or utc_timestamp()
        metrics = result.get("metrics", {})
        points = [
            {
                "label": name,
                "summary": {
                    "median": m.get("median"),
                    "iqr": m.get("iqr"),
                    "p90": m.get("p90"),
                    "unit": m.get("unit"),
                    "direction": m.get("direction"),
                    "suite": m.get("suite"),
                },
            }
            for name, m in sorted(metrics.items())
        ]
        env = dict(result.get("env", {}))
        record: Dict[str, Any] = {
            "schema": RUN_SCHEMA,
            "kind": "bench",
            "name": "bench",
            "created_utc": created,
            "git_sha": env.get("git_sha") or git_sha(),
            "code_fingerprint": env.get("code_fingerprint", ""),
            "env": env,
            "config": dict(result.get("config", {})),
            "metrics": {"elapsed_s": result.get("elapsed_s")},
            "points": points,
            "artifacts": {
                k: (None if v is None else str(v))
                for k, v in (artifacts or {}).items()
            },
        }
        record["run_id"] = self._new_run_id(
            "bench", "bench", created, [p["label"] for p in points]
        )
        return self._ingest(record)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def list(self) -> List[Dict[str, Any]]:
        """Index lines for every registered run, oldest first.

        The index is reconciled against ``runs/``: records missing from
        the index (e.g. a writer killed between record and index write)
        are recovered from their files, and a truncated final index line
        is skipped with a warning.
        """
        lines: List[Dict[str, Any]] = []
        if self.index_path.is_file():
            with open(self.index_path) as fh:
                raw = fh.readlines()
            last_content = 0
            for line_no, line in enumerate(raw, start=1):
                if line.strip():
                    last_content = line_no
            for line_no, line in enumerate(raw, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    if line_no == last_content and lines:
                        _log.warning(
                            "%s:%d: skipping malformed trailing index "
                            "line (%s)", self.index_path, line_no, exc,
                        )
                        break
                    raise ValueError(
                        f"{self.index_path}:{line_no}: not valid JSON: {exc}"
                    ) from exc
                if isinstance(rec, dict) and rec.get("run_id"):
                    lines.append(rec)
        seen = {rec["run_id"] for rec in lines}
        for path in sorted(self.runs_dir.glob("*.json")):
            if path.stem in seen:
                continue
            try:
                full = self.load(path.stem)
            except (ValueError, OSError):
                continue
            lines.append(
                {
                    "schema": RUN_SCHEMA,
                    "run_id": full["run_id"],
                    "kind": full.get("kind", "?"),
                    "name": full.get("name", "?"),
                    "created_utc": full.get("created_utc", ""),
                    "git_sha": full.get("git_sha", ""),
                    "points": len(full.get("points", ())),
                }
            )
        lines.sort(key=lambda rec: (rec.get("created_utc", ""), rec["run_id"]))
        return lines

    def __len__(self) -> int:
        return len(self.list())

    def resolve(self, ref: str) -> str:
        """A full run id for ``ref`` (exact id, unique prefix, or the
        special ref ``latest`` / ``latest:<name>``)."""
        runs = self.list()
        if not runs:
            raise ValueError(f"registry at {self.root} has no runs")
        if ref == "latest":
            return runs[-1]["run_id"]
        if ref.startswith("latest:"):
            name = ref.split(":", 1)[1]
            matching = [r for r in runs if r.get("name") == name]
            if not matching:
                raise ValueError(f"no runs named {name!r} in {self.root}")
            return matching[-1]["run_id"]
        exact = [r["run_id"] for r in runs if r["run_id"] == ref]
        if exact:
            return exact[0]
        prefixed = [r["run_id"] for r in runs if r["run_id"].startswith(ref)]
        if len(prefixed) == 1:
            return prefixed[0]
        if prefixed:
            raise ValueError(
                f"run ref {ref!r} is ambiguous: {', '.join(prefixed[:5])}"
            )
        raise ValueError(f"no run matching {ref!r} in {self.root}")

    def load(self, ref: str) -> Dict[str, Any]:
        """The full record for one run (accepts :meth:`resolve` refs)."""
        path = self._run_path(ref)
        if not path.is_file():
            path = self._run_path(self.resolve(ref))
        with open(path) as fh:
            record = json.load(fh)
        if not isinstance(record, dict) or record.get("schema") != RUN_SCHEMA:
            raise ValueError(f"{path}: not a schema-{RUN_SCHEMA} run record")
        return record

    def history(
        self, name: str, *, kind: str = "sweep", before: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Full records named ``name`` (oldest first), optionally only
        those registered strictly before run ``before``."""
        out: List[Dict[str, Any]] = []
        for line in self.list():
            if line.get("kind") != kind or line.get("name") != name:
                continue
            if before is not None and line["run_id"] == before:
                break
            try:
                out.append(self.load(line["run_id"]))
            except (ValueError, OSError):  # pragma: no cover - corrupt record
                continue
        return out


# ---------------------------------------------------------------------------
# diffing
# ---------------------------------------------------------------------------

#: Summary fields compared (in order) by :func:`diff_runs`.
_DIFF_FIELDS = (
    "app_time",
    "bg_time",
    "energy_j",
    "avg_power_w",
    "total_migrations",
    "total_migration_cost_s",
    "lb_steps",
    "median",
)


def _point_map(record: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {p["label"]: p for p in record.get("points", ())}


def diff_runs(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Dict[str, Any]:
    """Structured per-point comparison of two run records.

    Points are matched by label. For every shared label each numeric
    summary field that differs is reported as ``[a, b, rel]`` where
    ``rel`` is the relative change from ``a`` (None when ``a`` is 0 or
    the field is not a ratio-friendly number).
    """
    pa, pb = _point_map(a), _point_map(b)
    only_a = sorted(set(pa) - set(pb))
    only_b = sorted(set(pb) - set(pa))
    changed: Dict[str, Dict[str, List[Any]]] = {}
    identical: List[str] = []
    for label in sorted(set(pa) & set(pb)):
        sa = pa[label].get("summary", {})
        sb = pb[label].get("summary", {})
        deltas: Dict[str, List[Any]] = {}
        for field in _DIFF_FIELDS:
            va, vb = sa.get(field), sb.get(field)
            if va is None and vb is None:
                continue
            if va == vb:
                continue
            rel = None
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
                rel = (vb - va) / abs(va)
            deltas[field] = [va, vb, rel]
        if deltas:
            changed[label] = deltas
        else:
            identical.append(label)
    return {
        "a": a.get("run_id"),
        "b": b.get("run_id"),
        "only_a": only_a,
        "only_b": only_b,
        "changed": changed,
        "identical": identical,
    }

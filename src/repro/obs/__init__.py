"""Cross-run observability: registry, live monitoring, anomalies, reports.

The layers below answer per-run questions — :mod:`repro.telemetry`
records what one balancer did, :mod:`repro.perf` measures what one
build costs. This package is the cross-run layer:

* :mod:`repro.obs.registry` — every sweep/bench run recorded forever
  (config, git SHA, seeds, env fingerprint, metrics), queryable via
  ``repro runs list/show/diff``;
* :mod:`repro.obs.watch` — live sweep monitoring over the ``schema: 1``
  progress event stream (``repro watch``, ``repro sweep --live``);
* :mod:`repro.obs.anomaly` — rule-based detectors (Eq. 2 drift, timing
  penalty outliers, migration spikes, bench regressions, fabric steal
  storms / respawn burn / straggler shards) behind ``repro runs check``;
* :mod:`repro.obs.fabtrace` — the fabric flight recorder: assembles
  every worker's span stream into one clock-rebased causal timeline
  with health metrics, critical path and a Perfetto export
  (``repro fabric trace`` / ``repro fabric status``);
* :mod:`repro.obs.report` — the self-contained HTML dashboard
  (``repro report``).

All of it is strictly read-side: nothing here is imported by the
simulator or the sweep hot path.
"""

from repro.obs.anomaly import (
    DEFAULT_THRESHOLDS,
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    Finding,
    Thresholds,
    check_bench_trajectory,
    check_fabric,
    check_run,
    has_errors,
    max_severity,
)
from repro.obs.fabtrace import (
    FabricTrace,
    ShardAttempt,
    assemble_trace,
    export_perfetto,
    fabric_status,
    format_status_text,
    format_trace_text,
)
from repro.obs.registry import (
    RUN_SCHEMA,
    RunRegistry,
    default_registry_dir,
    diff_runs,
)
from repro.obs.report import build_report, render_report, write_report
from repro.obs.watch import LiveWatch, WatchRenderer, replay, watch_file

__all__ = [
    "RUN_SCHEMA",
    "RunRegistry",
    "default_registry_dir",
    "diff_runs",
    "WatchRenderer",
    "replay",
    "watch_file",
    "LiveWatch",
    "Finding",
    "Thresholds",
    "DEFAULT_THRESHOLDS",
    "SEV_INFO",
    "SEV_WARNING",
    "SEV_ERROR",
    "check_run",
    "check_bench_trajectory",
    "check_fabric",
    "max_severity",
    "has_errors",
    "FabricTrace",
    "ShardAttempt",
    "assemble_trace",
    "export_perfetto",
    "fabric_status",
    "format_trace_text",
    "format_status_text",
    "build_report",
    "render_report",
    "write_report",
]

"""Live sweep monitoring: a TTY renderer over the progress event stream.

``repro sweep`` already narrates itself as ``"schema": 1`` JSON events
(:mod:`repro.experiments.progress`); this module turns that stream into
a live view — per-worker state, throughput, ETA, cache hit rate — in
two modes:

* ``repro watch FILE`` replays (or, with ``--follow``, tails) a
  ``--jsonl`` progress file written by a sweep in another process;
* ``repro sweep --live`` attaches the renderer in-process via the
  :class:`~repro.experiments.progress.EventLog` ``on_event`` hook.

Either way the engine hot path is untouched: the renderer only ever
*consumes* events the sweep already emits (the same null-hook doctrine
as :mod:`repro.perf.profiler` — observation is opt-in and strictly
read-only). Unknown event types and unknown fields are ignored, so the
renderer keeps working against streams from newer code.

:class:`WatchRenderer` itself is pure state + string rendering (feed
events in, ask for a frame), which is what makes live monitoring
testable from a replayed event list with no engine, no TTY and no
clock.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, TextIO, Union

from repro.experiments.progress import parse_progress_line

__all__ = ["WatchRenderer", "replay", "watch_file", "LiveWatch"]

_BAR_WIDTH = 32


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"


class WatchRenderer:
    """Folds progress events into a renderable monitoring state.

    Feed every event (dict) to :meth:`feed`; :meth:`render` returns the
    current multi-line frame. Events with unrecognised types — and any
    fields a known event carries beyond the ones used here — are ignored
    (forward compatibility with additive schema changes).
    """

    def __init__(self) -> None:
        self.spec: str = "?"
        self.total: int = 0
        self.workers: int = 0
        self.started_cached: int = 0
        self.done: int = 0
        self.cached: int = 0
        self.executed: int = 0
        self.in_flight: List[str] = []  # labels started but not done
        self.last_by_worker: Dict[str, str] = {}
        self.count_by_worker: Dict[str, int] = {}
        self.recent: List[str] = []  # most recent completions, newest last
        self.walls: List[float] = []  # executed per-point wall times
        self.walls_by_worker: Dict[str, List[float]] = {}
        self._done_ids: set = set()  # completion dedup (at-least-once)
        self.last_t: float = 0.0
        self.final_metrics: Optional[Dict[str, Any]] = None
        self.run_id: Optional[str] = None

    # ------------------------------------------------------------------
    def feed(self, event: Mapping[str, Any]) -> None:
        """Fold one progress event into the state (unknown -> no-op)."""
        t = event.get("t")
        if isinstance(t, (int, float)):
            self.last_t = float(t)
        kind = event.get("event")
        if kind == "sweep_start":
            self.spec = str(event.get("spec", "?"))
            self.total = int(event.get("points", 0) or 0)
            self.workers = int(event.get("workers", 0) or 0)
            self.started_cached = int(event.get("cached", 0) or 0)
        elif kind == "point_start":
            label = str(event.get("label", "?"))
            if label not in self.in_flight:
                self.in_flight.append(label)
        elif kind == "point_done":
            label = str(event.get("label", "?"))
            if label in self.in_flight:
                self.in_flight.remove(label)
            # distributed sweeps are at-least-once: a point completed by
            # a worker that then died is re-delivered by the shard's
            # next owner, so progress counts unique points while the
            # per-worker stats below keep counting actual executions
            point_id = str(event.get("key") or label)
            first_completion = point_id not in self._done_ids
            self._done_ids.add(point_id)
            if first_completion:
                self.done += 1
            worker = str(event.get("worker", "?"))
            if event.get("cached"):
                if first_completion:
                    self.cached += 1
            else:
                self.executed += 1
                wall = event.get("wall_s")
                if isinstance(wall, (int, float)):
                    self.walls.append(float(wall))
                    self.walls_by_worker.setdefault(worker, []).append(
                        float(wall)
                    )
                self.last_by_worker[worker] = label
                self.count_by_worker[worker] = (
                    self.count_by_worker.get(worker, 0) + 1
                )
            if event.get("cached"):
                self.recent.append(f"{label} [cache]")
            else:
                wall = event.get("wall_s") or 0
                self.recent.append(f"{label} [{worker} {wall:.2f}s]")
            del self.recent[:-5]
        elif kind == "sweep_done":
            self.final_metrics = {
                k: event.get(k)
                for k in (
                    "points", "executed", "cache_hits", "hit_rate",
                    "elapsed_s", "worker_utilization",
                )
            }
        elif kind == "run_registered":
            run_id = event.get("run_id")
            if isinstance(run_id, str):
                self.run_id = run_id
        # anything else: a newer event type — deliberately ignored

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.final_metrics is not None

    def throughput(self) -> Optional[float]:
        """Completed points per second of stream time (None before any)."""
        if self.done == 0 or self.last_t <= 0:
            return None
        return self.done / self.last_t

    def worker_throughput(self) -> Dict[str, float]:
        """Executed points per busy-second, per worker.

        Derived purely from ``point_done`` wall times, so it is exact
        for interleaved multi-worker streams (fabric workers append to
        separate files that are merged by emission time — per-worker
        busy time is unaffected by the interleaving). Workers with no
        positive wall time yet are omitted.
        """
        rates: Dict[str, float] = {}
        for worker, walls in self.walls_by_worker.items():
            busy = sum(walls)
            if busy > 0:
                rates[worker] = len(walls) / busy
        return rates

    def eta_s(self) -> Optional[float]:
        """Estimated seconds to finish the remaining points."""
        remaining = self.total - self.done
        if remaining <= 0 or not self.walls:
            return None
        mean_wall = sum(self.walls) / len(self.walls)
        pool = max(1, self.workers)
        return remaining * mean_wall / pool

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The current monitoring frame (no ANSI — plain lines)."""
        lines: List[str] = []
        total = max(self.total, self.done)
        frac = (self.done / total) if total else 0.0
        filled = int(round(frac * _BAR_WIDTH))
        bar = "#" * filled + "-" * (_BAR_WIDTH - filled)
        lines.append(
            f"sweep {self.spec} — {self.done}/{total or '?'} points "
            f"({self.cached} cached) workers={self.workers or '?'}"
        )
        lines.append(f"  [{bar}] {100.0 * frac:5.1f}%  t={self.last_t:.2f}s")
        rate = self.throughput()
        lines.append(
            "  throughput: "
            + (f"{rate:.2f} points/s" if rate is not None else "-")
            + "   eta: "
            + _fmt_eta(self.eta_s() if not self.finished else 0.0)
        )
        if self.in_flight:
            lines.append("  running: " + ", ".join(self.in_flight[:4]))
        rates = self.worker_throughput()
        for worker in sorted(self.last_by_worker):
            line = (
                f"  {worker}: {self.count_by_worker.get(worker, 0)} done, "
                f"last {self.last_by_worker[worker]}"
            )
            if worker in rates:
                line += f" ({rates[worker]:.2f}/s)"
            lines.append(line)
        if self.recent:
            lines.append("  recent: " + "; ".join(self.recent[-3:]))
        if self.final_metrics is not None:
            m = self.final_metrics
            hit = m.get("hit_rate")
            util = m.get("worker_utilization")
            lines.append(
                f"  done: executed={m.get('executed')} "
                f"cache_hits={m.get('cache_hits')}"
                + (f" ({100.0 * hit:.0f}%)" if isinstance(hit, (int, float)) else "")
                + (
                    f" elapsed={m.get('elapsed_s'):.2f}s"
                    if isinstance(m.get("elapsed_s"), (int, float))
                    else ""
                )
                + (
                    f" utilization={100.0 * util:.0f}%"
                    if isinstance(util, (int, float))
                    else ""
                )
            )
        if self.run_id:
            lines.append(f"  registered as run {self.run_id}")
        return "\n".join(lines)


def replay(events: Iterable[Mapping[str, Any]]) -> WatchRenderer:
    """Feed a whole event sequence; returns the final renderer state."""
    renderer = WatchRenderer()
    for event in events:
        renderer.feed(event)
    return renderer


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def watch_file(
    path: Union[str, Path],
    *,
    out: Optional[TextIO] = None,
    follow: bool = False,
    interval: float = 0.5,
    timeout_s: Optional[float] = None,
    require_finished: bool = False,
) -> int:
    """Render a progress JSONL file or fabric job dir; returns an exit code.

    Without ``follow`` the existing file is replayed and one final frame
    printed. With ``follow`` the file is tailed (new lines rendered as
    they land) until a ``sweep_done`` event, EOF-after-timeout, or
    Ctrl-C. Malformed lines are skipped — a live writer may be mid-line.
    ``require_finished`` (the CLI's ``--replay``) makes an incomplete
    stream — no ``sweep_done`` — exit 1 instead of 0, so CI can assert
    a recorded sweep actually ran to completion.

    A *directory* holding a fabric job is watched by tailing the merged
    multi-worker event streams instead (see :func:`_watch_fabric_dir`).
    """
    out = out if out is not None else sys.stdout
    p = Path(path)
    if p.is_dir():
        if (p / "job.json").is_file():
            return _watch_fabric_dir(
                p,
                out=out,
                follow=follow,
                interval=interval,
                timeout_s=timeout_s,
                require_finished=require_finished,
            )
        print(
            f"repro watch: error: {p} is a directory with no fabric job "
            f"(job.json)",
            file=sys.stderr,
        )
        return 1
    if not p.is_file():
        print(f"repro watch: error: no progress file at {p}", file=sys.stderr)
        return 1
    renderer = WatchRenderer()
    is_tty = hasattr(out, "isatty") and out.isatty()
    waited = 0.0

    def paint() -> None:
        frame = renderer.render()
        if is_tty:
            out.write("\x1b[2J\x1b[H" + frame + "\n")
        else:
            out.write(frame + "\n")
        out.flush()

    try:
        with open(p) as fh:
            while True:
                line = fh.readline()
                if line:
                    waited = 0.0
                    try:
                        event = parse_progress_line(line)
                    except ValueError:
                        continue  # partial/foreign line
                    if event is not None:
                        renderer.feed(event)
                        if follow:
                            paint()
                    continue
                if not follow or renderer.finished:
                    break
                if timeout_s is not None and waited >= timeout_s:
                    break
                time.sleep(interval)
                waited += interval
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    paint()
    if require_finished and not renderer.finished:
        print(
            f"repro watch: error: {p} has no sweep_done event "
            f"({renderer.done} point(s) recorded) — the sweep did not finish",
            file=sys.stderr,
        )
        return 1
    return 0


def _watch_fabric_dir(
    root: Path,
    *,
    out: TextIO,
    follow: bool,
    interval: float,
    timeout_s: Optional[float],
    require_finished: bool,
) -> int:
    """Watch a fabric job directory by merging every worker's stream.

    Uses the fabric's own :class:`EventTailer` (byte offsets per file,
    complete lines only), so the view is exactly what the coordinator
    sees — and it works from *any* host sharing the directory, with no
    coordinator process required. ``sweep_start`` is synthesised from
    ``job.json``; completion means every planned shard has a result
    file. Redelivered ``point_done`` events (at-least-once delivery)
    are deduplicated by the renderer as usual.
    """
    from repro.experiments.fabric.transport import FileTransport

    transport = FileTransport(root)
    try:
        job = transport.read_job()
    except (ValueError, OSError) as exc:
        print(f"repro watch: error: {exc}", file=sys.stderr)
        return 1
    shard_ids = [str(s["shard_id"]) for s in job.get("shards", ())]
    renderer = WatchRenderer()
    renderer.feed(
        {
            "event": "sweep_start",
            "t": 0.0,
            "spec": str(job.get("name", root.name)),
            "points": len(job.get("points", ())),
            "workers": 0,
            "cached": 0,
        }
    )
    tailer = transport.event_tailer()
    is_tty = hasattr(out, "isatty") and out.isatty()
    waited = 0.0

    def paint() -> None:
        workers_dir = root / "workers"
        if workers_dir.is_dir():
            renderer.workers = len(list(workers_dir.glob("*.json")))
        frame = renderer.render()
        done = len(transport.completed_shard_ids())
        frame += f"\n  shards: {done}/{len(shard_ids)} results on disk"
        if is_tty:
            out.write("\x1b[2J\x1b[H" + frame + "\n")
        else:
            out.write(frame + "\n")
        out.flush()

    try:
        while True:
            drained = False
            for _worker, event in tailer.drain():
                renderer.feed(event)
                drained = True
            if drained:
                waited = 0.0
                if follow:
                    paint()
            finished = bool(shard_ids) and transport.all_done(shard_ids)
            if not follow or finished:
                break
            if timeout_s is not None and waited >= timeout_s:
                break
            time.sleep(interval)
            waited += interval
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    for _worker, event in tailer.drain():  # trailing events post-results
        renderer.feed(event)
    paint()
    if require_finished and not transport.all_done(shard_ids):
        done = len(transport.completed_shard_ids())
        print(
            f"repro watch: error: fabric job at {root} is incomplete "
            f"({done}/{len(shard_ids)} shard results) ",
            file=sys.stderr,
        )
        return 1
    return 0


class LiveWatch:
    """In-process live monitor: an ``EventLog.on_event`` callback.

    Repaints the frame on every event — sweeps emit a handful of events
    per point, so repaint cost is negligible next to simulation. On a
    TTY each frame redraws in place; on a pipe only *final* state is
    printed (one frame at ``sweep_done``) to keep logs readable.
    """

    def __init__(self, out: Optional[TextIO] = None) -> None:
        self.out = out if out is not None else sys.stderr
        self.renderer = WatchRenderer()
        self._is_tty = hasattr(self.out, "isatty") and self.out.isatty()
        self._painted_lines = 0

    def on_event(self, event: Mapping[str, Any]) -> None:
        self.renderer.feed(event)
        if self._is_tty:
            self._repaint()
        elif self.renderer.finished:
            self.out.write(self.renderer.render() + "\n")
            self.out.flush()

    def _repaint(self) -> None:
        frame = self.renderer.render()
        if self._painted_lines:
            # move up and clear the previous frame, then redraw
            self.out.write(f"\x1b[{self._painted_lines}F\x1b[J")
        self.out.write(frame + "\n")
        self.out.flush()
        self._painted_lines = frame.count("\n") + 1

"""Rule-based anomaly detection over registry history and audit trails.

The paper's Eq. (2) exists because interference is invisible until the
runtime watches for it; these detectors apply the same doctrine to the
reproduction itself. Each rule reduces one observable signal to zero or
more structured :class:`Finding`\\ s with a severity:

* ``bg-est-drift`` — the Eq. (2) estimator is *exact* in this simulator
  (the telemetry suite pins ``max |bg_est - bg_true| < 1e-9``), so any
  drift in a run's audit summaries means the window accounting broke;
* ``penalty-outlier`` — a point's ``app_time`` far above the median of
  the same point (same label *and* identical parameters) across prior
  registered runs: the cross-run analogue of a Fig. 2 timing-penalty
  bar jumping;
* ``migration-spike`` — migration count far above the same history
  median: balancer churn (the ABL-PERIOD failure mode) arriving
  unannounced;
* ``lb-no-benefit`` — within one run, an interfered LB point not beating
  its matched noLB point (the paper's directional Fig. 2 claim). Tiny
  smoke scenarios legitimately violate this (LB overhead dominates), so
  it is a warning, never an error;
* ``bench-regression`` — the latest bench trajectory entry slower than
  the median of prior entries, direction-normalised like
  :mod:`repro.perf.compare`;
* ``steal-storm`` — fabric work stealing beyond fault recovery: any
  steal is reported (info — the CI drills grep for it), and a steal
  *ratio* (steals / shards) past the thresholds means leases are
  churning (timeout too tight for the point cost, or hosts flapping);
* ``respawn-budget-burn`` — replacement workers consumed; an exhausted
  budget means the next such failure strands the job;
* ``straggler-shard`` — one committed shard attempt far above this
  run's median shard wall (with history context when available): the
  "Anticipating Load Imbalance" signal at fabric granularity;
* ``ledger-not-conserved`` — a point's time-attribution ledger
  (:mod:`repro.obs.ledger`) failed its bit-exact conservation check:
  the accounting itself is broken, always an error;
* ``interference-dominated`` — a point lost more time to co-runner
  contention than it spent computing (stolen/compute ratio): the
  paper's motivating pathology, surfaced per point;
* ``migration-overhead-spike`` — a point's LB-pause (migration
  overhead) wall fraction far above the same point's history median:
  the balancer is paying more than it used to for the same scenario;
* ``idle-regression`` — a point's barrier-idle wall fraction far above
  its history median: load imbalance creeping back in;
* ``imbalance-unrecovered`` — a point's run-level LB efficiency
  (recovered / recoverable core-seconds, :mod:`repro.obs.lineage`)
  well below the same point's registry-history median: the balancer is
  recovering less of the achievable imbalance than it used to;
* ``thrashing-chare`` — one chare migrated more than K times while the
  LB steps that moved it recovered nothing: pure churn, the ABL-PERIOD
  failure mode pinned to the object that suffers it.

Severities: ``info`` < ``warning`` < ``error``. ``repro runs check``
exits non-zero only on ``error`` findings, so the CI anomaly gate fails
on broken physics and 2x-and-worse cliffs, not on noise. Thresholds are
one frozen dataclass (:class:`Thresholds`) so every consumer judges by
the same bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "SEV_INFO",
    "SEV_WARNING",
    "SEV_ERROR",
    "Finding",
    "Thresholds",
    "DEFAULT_THRESHOLDS",
    "check_estimation_drift",
    "check_lb_benefit",
    "check_history_outliers",
    "check_bench_trajectory",
    "check_fabric",
    "check_ledger",
    "check_lineage",
    "check_run",
    "max_severity",
    "has_errors",
]

SEV_INFO = "info"
SEV_WARNING = "warning"
SEV_ERROR = "error"

_SEV_ORDER = {SEV_INFO: 0, SEV_WARNING: 1, SEV_ERROR: 2}


@dataclass(frozen=True)
class Finding:
    """One detected anomaly: which rule fired, on what, and how badly."""

    rule: str
    severity: str
    subject: str
    message: str
    value: Optional[float] = None
    threshold: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class Thresholds:
    """The bars every detector judges against (see module docstring)."""

    #: Eq. 2 max |bg_est - bg_true| above which to warn / error (s).
    bg_est_warn_s: float = 1e-9
    bg_est_error_s: float = 1e-6
    #: app_time ratio vs history median that warns / errors.
    penalty_warn: float = 1.5
    penalty_error: float = 2.0
    #: migration-count ratio vs history median that warns / errors ...
    migration_warn: float = 2.0
    migration_error: float = 4.0
    #: ... provided at least this many migrations moved (absolute floor).
    migration_min: int = 4
    #: direction-normalised bench slowdown factor that warns / errors.
    bench_warn: float = 1.25
    bench_error: float = 2.0
    #: minimum prior runs before history rules fire at all.
    min_history: int = 1
    #: steals / shards ratio that warns / errors (any steal is info).
    steal_ratio_warn: float = 0.25
    steal_ratio_error: float = 0.75
    #: committed shard wall vs this run's median that warns.
    straggler_ratio: float = 2.0
    #: ... provided the straggler is at least this long (absolute floor).
    straggler_min_s: float = 0.05
    #: ledger stolen/compute time ratio that warns / errors.
    interference_warn: float = 0.5
    interference_error: float = 1.0
    #: ledger overhead wall-fraction ratio vs history median ...
    lb_overhead_warn: float = 2.0
    lb_overhead_error: float = 4.0
    #: ... provided overhead is at least this fraction of wall (floor).
    lb_overhead_min: float = 0.01
    #: ledger idle wall-fraction ratio vs history median ...
    idle_warn: float = 1.5
    idle_error: float = 2.5
    #: ... provided idle is at least this fraction of wall (floor).
    idle_min: float = 0.05
    #: absolute drop in run LB efficiency vs the identical point's
    #: history median that warns / errors.
    efficiency_drop_warn: float = 0.2
    efficiency_drop_error: float = 0.5
    #: migrations of one chare beyond which zero-recovery churn is
    #: judged thrashing.
    thrash_migrations: int = 3


DEFAULT_THRESHOLDS = Thresholds()


def _severity(value: float, warn: float, error: float) -> Optional[str]:
    if value >= error:
        return SEV_ERROR
    if value >= warn:
        return SEV_WARNING
    return None


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


# ---------------------------------------------------------------------------
# per-run rules
# ---------------------------------------------------------------------------


def check_estimation_drift(
    record: Mapping[str, Any], thresholds: Thresholds = DEFAULT_THRESHOLDS
) -> List[Finding]:
    """Eq. 2 estimation error beyond float noise in audited points."""
    findings: List[Finding] = []
    for point in record.get("points", ()):
        audit = point.get("audit")
        if not isinstance(audit, Mapping):
            continue
        est = audit.get("estimation_error", {})
        max_abs = float(est.get("max_abs", 0.0) or 0.0)
        severity = _severity(
            max_abs, thresholds.bg_est_warn_s, thresholds.bg_est_error_s
        )
        if severity is not None:
            findings.append(
                Finding(
                    rule="bg-est-drift",
                    severity=severity,
                    subject=f"{record.get('run_id', '?')}:{point['label']}",
                    message=(
                        f"Eq. 2 estimation error max |bg_est - bg_true| = "
                        f"{max_abs:.3g}s (estimator is exact in this "
                        f"simulator; window accounting has drifted)"
                    ),
                    value=max_abs,
                    threshold=(
                        thresholds.bg_est_error_s
                        if severity == SEV_ERROR
                        else thresholds.bg_est_warn_s
                    ),
                )
            )
    return findings


def _lb_pairs(record: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """(noLB point, LB point) pairs: identical params except balancer."""
    by_key: Dict[str, List[Mapping[str, Any]]] = {}
    for point in record.get("points", ()):
        params = point.get("params")
        if not isinstance(params, Mapping):
            continue
        rest = {k: v for k, v in params.items() if k != "balancer"}
        key = repr(sorted(rest.items()))
        by_key.setdefault(key, []).append(point)
    pairs: List[Dict[str, Any]] = []
    for group in by_key.values():
        nolb = [p for p in group if p["params"].get("balancer") in (None, "none")]
        balanced = [p for p in group if p["params"].get("balancer") not in (None, "none")]
        for base in nolb:
            for lb in balanced:
                pairs.append({"nolb": base, "lb": lb})
    return pairs


def check_lb_benefit(record: Mapping[str, Any]) -> List[Finding]:
    """The Fig. 2 directional claim inside one run (warning-level).

    Only interfered pairs are judged — without a background job there is
    nothing for Algorithm 1 to win back, and LB overhead makes the
    balanced run legitimately slower.
    """
    findings: List[Finding] = []
    for pair in _lb_pairs(record):
        if not pair["nolb"]["params"].get("bg"):
            continue
        t_nolb = float(pair["nolb"]["summary"]["app_time"])
        t_lb = float(pair["lb"]["summary"]["app_time"])
        if t_lb > t_nolb:
            ratio = t_lb / t_nolb if t_nolb else float("inf")
            findings.append(
                Finding(
                    rule="lb-no-benefit",
                    severity=SEV_WARNING,
                    subject=(
                        f"{record.get('run_id', '?')}:{pair['lb']['label']}"
                    ),
                    message=(
                        f"interfered LB run ({t_lb:.6f}s) did not beat its "
                        f"matched noLB run ({t_nolb:.6f}s, "
                        f"{(ratio - 1.0) * 100.0:.1f}% slower) — expected "
                        f"at paper scale; routine for tiny smoke points"
                    ),
                    value=ratio,
                    threshold=1.0,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# cross-run rules
# ---------------------------------------------------------------------------


def _history_values(
    history: Sequence[Mapping[str, Any]], label: str, params: Mapping[str, Any],
    field: str,
) -> List[float]:
    """``field`` across prior runs of the *identical* point."""
    values: List[float] = []
    for past in history:
        for point in past.get("points", ()):
            if point.get("label") != label:
                continue
            if point.get("params") != params:
                continue
            value = point.get("summary", {}).get(field)
            if isinstance(value, (int, float)):
                values.append(float(value))
    return values


def check_history_outliers(
    record: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]],
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> List[Finding]:
    """Timing-penalty outliers and migration spikes vs registry history."""
    findings: List[Finding] = []
    if len(history) < thresholds.min_history:
        return findings
    for point in record.get("points", ()):
        label = point.get("label")
        params = point.get("params")
        summary = point.get("summary", {})
        if not label or not isinstance(params, Mapping):
            continue

        past_times = _history_values(history, label, params, "app_time")
        app_time = summary.get("app_time")
        if past_times and isinstance(app_time, (int, float)):
            median = _median(past_times)
            if median > 0:
                ratio = float(app_time) / median
                severity = _severity(
                    ratio, thresholds.penalty_warn, thresholds.penalty_error
                )
                if severity is not None:
                    findings.append(
                        Finding(
                            rule="penalty-outlier",
                            severity=severity,
                            subject=f"{record.get('run_id', '?')}:{label}",
                            message=(
                                f"app_time {float(app_time):.6f}s is "
                                f"{ratio:.2f}x the median of "
                                f"{len(past_times)} prior run(s) "
                                f"({median:.6f}s)"
                            ),
                            value=ratio,
                            threshold=(
                                thresholds.penalty_error
                                if severity == SEV_ERROR
                                else thresholds.penalty_warn
                            ),
                        )
                    )

        past_migs = _history_values(
            history, label, params, "total_migrations"
        )
        migrations = summary.get("total_migrations")
        if past_migs and isinstance(migrations, (int, float)):
            median = _median(past_migs)
            if (
                migrations >= thresholds.migration_min
                and median >= 0
                and migrations > median
            ):
                ratio = (
                    float(migrations) / median if median > 0 else float("inf")
                )
                severity = _severity(
                    ratio, thresholds.migration_warn, thresholds.migration_error
                )
                if severity is not None:
                    findings.append(
                        Finding(
                            rule="migration-spike",
                            severity=severity,
                            subject=f"{record.get('run_id', '?')}:{label}",
                            message=(
                                f"{int(migrations)} migrations vs a history "
                                f"median of {median:.1f} across "
                                f"{len(past_migs)} prior run(s) — balancer "
                                f"churn"
                            ),
                            value=ratio,
                            threshold=(
                                thresholds.migration_error
                                if severity == SEV_ERROR
                                else thresholds.migration_warn
                            ),
                        )
                    )
    return findings


def check_bench_trajectory(
    entries: Sequence[Mapping[str, Any]],
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> List[Finding]:
    """Latest bench entry vs the median of the prior trajectory.

    ``entries`` are BENCH_*.json dicts ordered oldest -> newest (the
    caller sorts, typically by ``created_utc``). The slowdown factor is
    direction-normalised exactly like :mod:`repro.perf.compare`: > 1
    always means worse.
    """
    findings: List[Finding] = []
    if len(entries) < 2:
        return findings
    latest = entries[-1]
    prior = entries[:-1]
    sha = latest.get("env", {}).get("git_sha", "?")
    for name, metric in sorted(latest.get("metrics", {}).items()):
        current = metric.get("median")
        if not isinstance(current, (int, float)) or current <= 0:
            continue
        past = [
            p["metrics"][name]["median"]
            for p in prior
            if isinstance(p.get("metrics", {}).get(name, {}).get("median"), (int, float))
            and p["metrics"][name]["median"] > 0
        ]
        if not past:
            continue
        baseline = _median(past)
        if metric.get("direction") == "lower":
            factor = float(current) / baseline
        else:
            factor = baseline / float(current)
        severity = _severity(factor, thresholds.bench_warn, thresholds.bench_error)
        if severity is not None:
            findings.append(
                Finding(
                    rule="bench-regression",
                    severity=severity,
                    subject=f"bench:{sha}:{name}",
                    message=(
                        f"{name} is {factor:.2f}x slower than the median of "
                        f"{len(past)} prior trajectory entr"
                        f"{'y' if len(past) == 1 else 'ies'} "
                        f"({baseline:,.1f} -> {float(current):,.1f} "
                        f"{metric.get('unit', '')})"
                    ),
                    value=factor,
                    threshold=(
                        thresholds.bench_error
                        if severity == SEV_ERROR
                        else thresholds.bench_warn
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# fabric rules
# ---------------------------------------------------------------------------


def check_fabric(
    record: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]] = (),
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> List[Finding]:
    """Fabric health rules over a run's ``fabric`` block (if any).

    Local sweeps carry no block and produce no findings. Any steal and
    any respawn is at least an ``info`` finding — the CI recovery
    drills *expect* their injected fault to surface here and grep for
    it — escalating only when the ratios say systemic churn rather than
    one recovered fault.
    """
    fabric = record.get("fabric")
    if not isinstance(fabric, Mapping):
        return []
    findings: List[Finding] = []
    run_id = record.get("run_id", "?")
    shards = int(fabric.get("shards", 0) or 0)

    steals = int(fabric.get("steals", 0) or 0)
    if steals > 0:
        ratio = steals / shards if shards else float(steals)
        severity = (
            _severity(
                ratio, thresholds.steal_ratio_warn, thresholds.steal_ratio_error
            )
            or SEV_INFO
        )
        findings.append(
            Finding(
                rule="steal-storm",
                severity=severity,
                subject=f"{run_id}:fabric",
                message=(
                    f"{steals} shard lease(s) stolen out of {shards} "
                    f"shard(s) ({ratio:.0%}) — "
                    + (
                        "systemic lease churn: timeout too tight for the "
                        "point cost, or hosts flapping"
                        if severity != SEV_INFO
                        else "expected when recovering from a worker "
                        "death/hang; a rising ratio means churn"
                    )
                ),
                value=ratio,
                threshold=thresholds.steal_ratio_warn,
            )
        )

    respawns = int(fabric.get("respawns", 0) or 0)
    budget = int(fabric.get("max_respawns", 0) or 0)
    if respawns > 0:
        exhausted = budget > 0 and respawns >= budget
        findings.append(
            Finding(
                rule="respawn-budget-burn",
                severity=SEV_WARNING if exhausted else SEV_INFO,
                subject=f"{run_id}:fabric",
                message=(
                    f"{respawns} of {budget} replacement worker(s) consumed"
                    + (
                        " — budget exhausted; the next total worker loss "
                        "strands the job until a resume"
                        if exhausted
                        else ""
                    )
                ),
                value=float(respawns),
                threshold=float(budget) if budget else None,
            )
        )

    walls = {
        str(shard): float(wall)
        for shard, wall in (fabric.get("shard_walls") or {}).items()
        if isinstance(wall, (int, float)) and wall > 0
    }
    if len(walls) >= 2:
        run_median = _median(list(walls.values()))
        past_walls: Dict[str, List[float]] = {}
        for past in history:
            block = past.get("fabric")
            if not isinstance(block, Mapping):
                continue
            for shard, wall in (block.get("shard_walls") or {}).items():
                if isinstance(wall, (int, float)) and wall > 0:
                    past_walls.setdefault(str(shard), []).append(float(wall))
        for shard, wall in sorted(walls.items()):
            baseline = run_median
            context = f"this run's median shard wall ({run_median:.3f}s)"
            prior = past_walls.get(shard)
            if prior and len(prior) >= thresholds.min_history:
                baseline = _median(prior)
                context = (
                    f"the same shard's median across {len(prior)} prior "
                    f"run(s) ({baseline:.3f}s)"
                )
            if baseline <= 0:
                continue
            ratio = wall / baseline
            if ratio >= thresholds.straggler_ratio and wall >= thresholds.straggler_min_s:
                findings.append(
                    Finding(
                        rule="straggler-shard",
                        severity=SEV_WARNING,
                        subject=f"{run_id}:{shard}",
                        message=(
                            f"shard wall {wall:.3f}s is {ratio:.2f}x "
                            f"{context} — one slow host/placement "
                            f"stretches the whole sweep"
                        ),
                        value=ratio,
                        threshold=thresholds.straggler_ratio,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# time-ledger rules
# ---------------------------------------------------------------------------


def _ledger_fraction_history(
    history: Sequence[Mapping[str, Any]],
    label: str,
    params: Mapping[str, Any],
    bucket: str,
) -> List[float]:
    """One ledger bucket's wall fraction across prior identical points."""
    values: List[float] = []
    for past in history:
        for point in past.get("points", ()):
            if point.get("label") != label or point.get("params") != params:
                continue
            ledger = point.get("ledger")
            if not isinstance(ledger, Mapping):
                continue
            value = ledger.get("fractions", {}).get(bucket)
            if isinstance(value, (int, float)):
                values.append(float(value))
    return values


def check_ledger(
    record: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]] = (),
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> List[Finding]:
    """Time-attribution rules over points carrying ledger summaries.

    Points recorded without ``sweep --ledger`` carry no ledger block and
    produce no findings. Conservation is judged per point (an exact
    invariant — any violation is an error); interference is judged
    against the in-run compute time; the overhead and idle rules need
    registry history of the identical point, like
    :func:`check_history_outliers`.
    """
    findings: List[Finding] = []
    run_id = record.get("run_id", "?")
    enough_history = len(history) >= thresholds.min_history
    for point in record.get("points", ()):
        ledger = point.get("ledger")
        if not isinstance(ledger, Mapping):
            continue
        label = point.get("label", "?")
        subject = f"{run_id}:{label}"

        if not ledger.get("conserved", False):
            findings.append(
                Finding(
                    rule="ledger-not-conserved",
                    severity=SEV_ERROR,
                    subject=subject,
                    message=(
                        f"time ledger does not conserve: residual "
                        f"{ledger.get('residual_s')}s out of "
                        f"wall x cores = "
                        f"{ledger.get('wall_s')}s x "
                        f"{len(ledger.get('cores', ()))} — the attribution "
                        f"accounting itself is broken"
                    ),
                    value=ledger.get("residual_s"),
                    threshold=0.0,
                )
            )

        totals = ledger.get("totals", {})
        compute = totals.get("compute")
        stolen = totals.get("stolen")
        if (
            isinstance(compute, (int, float))
            and isinstance(stolen, (int, float))
            and compute > 0
        ):
            ratio = float(stolen) / float(compute)
            severity = _severity(
                ratio,
                thresholds.interference_warn,
                thresholds.interference_error,
            )
            if severity is not None:
                findings.append(
                    Finding(
                        rule="interference-dominated",
                        severity=severity,
                        subject=subject,
                        message=(
                            f"co-runners stole {float(stolen):.6f} core-s "
                            f"against {float(compute):.6f} core-s of app "
                            f"compute ({ratio:.2f}x) — interference "
                            f"dominates this point"
                        ),
                        value=ratio,
                        threshold=(
                            thresholds.interference_error
                            if severity == SEV_ERROR
                            else thresholds.interference_warn
                        ),
                    )
                )

        if not enough_history:
            continue
        params = point.get("params")
        if not isinstance(params, Mapping):
            continue
        fractions = ledger.get("fractions", {})
        for bucket, rule, warn, error, floor, story in (
            (
                "overhead",
                "migration-overhead-spike",
                thresholds.lb_overhead_warn,
                thresholds.lb_overhead_error,
                thresholds.lb_overhead_min,
                "the balancer pays more than it used to for the same "
                "scenario",
            ),
            (
                "idle",
                "idle-regression",
                thresholds.idle_warn,
                thresholds.idle_error,
                thresholds.idle_min,
                "load imbalance is creeping back in",
            ),
        ):
            value = fractions.get(bucket)
            if not isinstance(value, (int, float)) or value < floor:
                continue
            past = _ledger_fraction_history(
                history, label, params, bucket
            )
            if not past:
                continue
            median = _median(past)
            if median <= 0:
                continue
            ratio = float(value) / median
            severity = _severity(ratio, warn, error)
            if severity is not None:
                findings.append(
                    Finding(
                        rule=rule,
                        severity=severity,
                        subject=subject,
                        message=(
                            f"{bucket} wall fraction {float(value):.4f} is "
                            f"{ratio:.2f}x the median of {len(past)} prior "
                            f"run(s) ({median:.4f}) — {story}"
                        ),
                        value=ratio,
                        threshold=error if severity == SEV_ERROR else warn,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# lineage rules
# ---------------------------------------------------------------------------


def _lineage_efficiency_history(
    history: Sequence[Mapping[str, Any]],
    label: str,
    params: Mapping[str, Any],
) -> List[float]:
    """Run-level LB efficiency across prior identical lineaged points."""
    values: List[float] = []
    for past in history:
        for point in past.get("points", ()):
            if point.get("label") != label or point.get("params") != params:
                continue
            lineage = point.get("lineage")
            if not isinstance(lineage, Mapping):
                continue
            value = lineage.get("run", {}).get("efficiency")
            if isinstance(value, (int, float)):
                values.append(float(value))
    return values


def check_lineage(
    record: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]] = (),
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> List[Finding]:
    """Chare-lineage rules over points carrying lineage payloads.

    Points recorded without ``sweep --lineage`` carry no payload and
    produce no findings. Thrashing is judged inside one run (a chare
    bounced more than K times while the steps that moved it recovered
    nothing); the efficiency rule needs registry history of the
    identical point, like :func:`check_history_outliers`.
    """
    findings: List[Finding] = []
    run_id = record.get("run_id", "?")
    enough_history = len(history) >= thresholds.min_history
    for point in record.get("points", ()):
        lineage = point.get("lineage")
        if not isinstance(lineage, Mapping):
            continue
        label = point.get("label", "?")
        subject = f"{run_id}:{label}"

        moved: Dict[str, int] = {}
        recovered: Dict[str, float] = {}
        for step in lineage.get("steps", ()):
            gain = step.get("recovered_s")
            for m in step.get("migrations", ()):
                chare = str(m.get("chare"))
                moved[chare] = moved.get(chare, 0) + 1
                if isinstance(gain, (int, float)):
                    recovered[chare] = recovered.get(chare, 0.0) + float(gain)
        for chare, count in sorted(moved.items()):
            if count <= thresholds.thrash_migrations:
                continue
            if recovered.get(chare, 0.0) > 0.0:
                continue
            findings.append(
                Finding(
                    rule="thrashing-chare",
                    severity=SEV_WARNING,
                    subject=f"{subject}:{chare}",
                    message=(
                        f"{chare} migrated {count} times while the LB "
                        f"steps that moved it recovered "
                        f"{recovered.get(chare, 0.0):.6f} core-s — pure "
                        f"churn; every move paid cost for no imbalance "
                        f"recovered"
                    ),
                    value=float(count),
                    threshold=float(thresholds.thrash_migrations),
                )
            )

        if not enough_history:
            continue
        params = point.get("params")
        if not isinstance(params, Mapping):
            continue
        efficiency = lineage.get("run", {}).get("efficiency")
        if not isinstance(efficiency, (int, float)):
            continue
        past = _lineage_efficiency_history(history, label, params)
        if not past:
            continue
        median = _median(past)
        drop = median - float(efficiency)
        severity = _severity(
            drop,
            thresholds.efficiency_drop_warn,
            thresholds.efficiency_drop_error,
        )
        if severity is not None:
            findings.append(
                Finding(
                    rule="imbalance-unrecovered",
                    severity=severity,
                    subject=subject,
                    message=(
                        f"run LB efficiency {float(efficiency):.2f} is "
                        f"{drop:.2f} below the median of {len(past)} prior "
                        f"run(s) ({median:.2f}) — the balancer recovers "
                        f"less of the achievable imbalance than it used to"
                    ),
                    value=drop,
                    threshold=(
                        thresholds.efficiency_drop_error
                        if severity == SEV_ERROR
                        else thresholds.efficiency_drop_warn
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# composition
# ---------------------------------------------------------------------------


def check_run(
    record: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]] = (),
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> List[Finding]:
    """Every per-run and cross-run rule applied to one sweep record."""
    findings: List[Finding] = []
    findings.extend(check_estimation_drift(record, thresholds))
    findings.extend(check_lb_benefit(record))
    findings.extend(check_history_outliers(record, history, thresholds))
    findings.extend(check_fabric(record, history, thresholds))
    findings.extend(check_ledger(record, history, thresholds))
    findings.extend(check_lineage(record, history, thresholds))
    findings.sort(key=lambda f: (-_SEV_ORDER[f.severity], f.rule, f.subject))
    return findings


def max_severity(findings: Sequence[Finding]) -> Optional[str]:
    """The worst severity present, or None for a clean bill."""
    if not findings:
        return None
    return max(findings, key=lambda f: _SEV_ORDER[f.severity]).severity


def has_errors(findings: Sequence[Finding]) -> bool:
    return any(f.severity == SEV_ERROR for f in findings)

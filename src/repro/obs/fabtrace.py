"""The fabric flight recorder: causal traces from a job directory.

A fabric run leaves a complete narration of itself on disk — one
``"schema":1`` progress stream per worker under ``events/`` plus the
coordinator's own span stream in ``coordinator.jsonl`` — but each
stream is stamped by its *own* clocks. This module assembles them into
one causal timeline:

1. **Rebase.** Every stream gets a global offset. With tracing on each
   event carries dual stamps (``t_wall``/``t_mono``), so the initial
   offset is the stream's median ``t_wall − t_mono`` — robust to a few
   stepped samples. Offsets are then *raised* along causal edges until
   every known happens-before pair is ordered: the job publish precedes
   each worker's first event, a worker's ``shard_done`` precedes the
   coordinator's ``shard_complete``, a respawn precedes the new
   worker's stream, and a steal victim's last span precedes the
   stealer's claim. Monotonic durations within a stream are preserved
   exactly; only whole streams slide.

2. **Extract shard attempts.** Each worker stream is replayed into
   :class:`ShardAttempt` spans — claim → points → done/fault — and the
   attempt that produced the committed ``results/<shard>.json`` is
   marked, so every executed point is attributable to exactly one
   committed attempt (:attr:`FabricTrace.problems` lists violations).

3. **Derive health.** Queue depth over time, per-worker busy/idle
   utilization, steal/respawn/death counts, straggler shards, and the
   end-to-end critical path: the chain of attempts (same-worker
   succession or steal handoff) ending at the last completed attempt.

The assembled trace exports to the Chrome/Perfetto ``trace_event``
format through the same :class:`~repro.runtime.tracing.TraceLog` +
:func:`~repro.projections.export.write_chrome_trace` pipeline the
simulator uses — one track per worker, one span per attempt, nested
spans per point, instant markers for steals.

Everything here is **read-only** over the job directory; assembling a
trace never perturbs the run (the null-hook doctrine's other half).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.experiments.fabric.transport import FileTransport
from repro.experiments.progress import parse_progress_line
from repro.util import get_logger

__all__ = [
    "ShardAttempt",
    "FabricTrace",
    "assemble_trace",
    "export_perfetto",
    "fabric_status",
    "format_trace_text",
    "format_status_text",
]

_log = get_logger(__name__)

#: Coordinator stream name in the assembled trace (cannot collide with a
#: worker: worker streams are file stems under ``events/`` and the
#: coordinator writes to ``coordinator.jsonl`` at the job root).
COORDINATOR = "coordinator"

#: Events the coordinator *originates* (vs relays from worker streams).
#: The assembler reads worker events from their own streams, so relayed
#: copies in ``coordinator.jsonl`` are dropped by this whitelist.
_COORDINATOR_KINDS = frozenset(
    {
        "sweep_start",
        "job_published",
        "job_resumed",
        "shard_complete",
        "shard_reassigned",
        "worker_dead",
        "worker_spawned",
        "sweep_done",
        "run_registered",
    }
)

_EPS = 1e-9


@dataclass
class ShardAttempt:
    """One worker's attempt at one shard, on the rebased global clock.

    ``outcome`` is one of ``done`` (result submitted), ``killed`` /
    ``hung`` (a fault span ended the attempt), ``duplicate`` (an
    injected redelivery re-execution), or ``lost`` (the stream ended
    mid-attempt with no fault span — a hard crash). ``committed`` marks
    the attempt whose submission is the shard's result file.
    """

    shard: str
    worker: str
    index: int
    start: float
    end: float
    outcome: str
    points: List[Dict[str, Any]] = field(default_factory=list)
    committed: bool = False

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def label(self) -> str:
        return f"{self.shard}#{self.index}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "worker": self.worker,
            "index": self.index,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "duration_s": round(self.duration, 6),
            "outcome": self.outcome,
            "committed": self.committed,
            "points": len(self.points),
            "executed": sum(1 for p in self.points if not p.get("cached")),
        }


@dataclass
class FabricTrace:
    """A fabric job's merged, clock-rebased causal timeline."""

    fabric_dir: str
    job_name: str
    streams: Dict[str, List[Dict[str, Any]]]
    offsets: Dict[str, float]
    timeline: List[Dict[str, Any]]
    attempts: List[ShardAttempt]
    health: Dict[str, Any]
    critical_path: List[ShardAttempt]
    problems: List[str]

    @property
    def workers(self) -> List[str]:
        return sorted(w for w in self.streams if w != COORDINATOR)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (events themselves stay on disk)."""
        return {
            "fabric_dir": self.fabric_dir,
            "job_name": self.job_name,
            "workers": self.workers,
            "offsets": {k: round(v, 6) for k, v in self.offsets.items()},
            "events": sum(len(v) for v in self.streams.values()),
            "attempts": [a.to_dict() for a in self.attempts],
            "health": self.health,
            "critical_path": [a.label for a in self.critical_path],
            "problems": list(self.problems),
        }


# ---------------------------------------------------------------------------
# stream reading
# ---------------------------------------------------------------------------


def _read_stream(path: Path) -> List[Dict[str, Any]]:
    """All parseable events of one JSONL stream, in file order.

    Tolerant by design: a fabric worker may die mid-write (that is the
    point of the drills), so malformed lines are skipped, not fatal.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError:
        return []
    events: List[Dict[str, Any]] = []
    for line in raw.decode("utf-8", "replace").splitlines():
        try:
            event = parse_progress_line(line)
        except ValueError:
            continue
        if event is not None:
            events.append(event)
    return events


def _load_streams(root: Path) -> Dict[str, List[Dict[str, Any]]]:
    streams: Dict[str, List[Dict[str, Any]]] = {}
    events_dir = root / "events"
    if events_dir.is_dir():
        for path in sorted(events_dir.glob("*.jsonl")):
            events = _read_stream(path)
            if events:
                streams[path.stem] = events
    coord = [
        e
        for e in _read_stream(root / "coordinator.jsonl")
        if e.get("event") in _COORDINATOR_KINDS
    ]
    if coord:
        streams[COORDINATOR] = coord
    return streams


# ---------------------------------------------------------------------------
# clock rebasing
# ---------------------------------------------------------------------------


def _mono(event: Mapping[str, Any]) -> float:
    """The event's position on its stream's monotonic axis.

    ``t_mono`` when the stream was traced; the envelope's ``t`` (offset
    from stream start — also monotonic) otherwise.
    """
    value = event.get("t_mono", event.get("t", 0.0))
    return float(value) if isinstance(value, (int, float)) else 0.0


def _initial_offset(events: List[Dict[str, Any]]) -> float:
    """Median ``t_wall − t_mono``: the stream's wall anchor, or 0."""
    deltas = sorted(
        float(e["t_wall"]) - float(e["t_mono"])
        for e in events
        if isinstance(e.get("t_wall"), (int, float))
        and isinstance(e.get("t_mono"), (int, float))
    )
    return deltas[len(deltas) // 2] if deltas else 0.0


def _relax_offsets(
    streams: Mapping[str, List[Dict[str, Any]]],
    offsets: Dict[str, float],
    edges: List[Tuple[str, int, str, int]],
) -> None:
    """Raise stream offsets until every causal edge is ordered.

    Each edge ``(su, iu, sv, iv)`` asserts event ``iu`` of stream ``su``
    happens before event ``iv`` of stream ``sv``. Violations are fixed
    by sliding the *target* stream later — never by moving a stream
    earlier, so wall anchors act as lower bounds. A full pass that moves
    nothing is a fixpoint; with honest monotonic durations the system is
    feasible and converges within one pass per stream (the pass cap
    guards against a pathological cyclic edge set).
    """
    for _ in range(len(streams) + 2):
        moved = False
        for su, iu, sv, iv in edges:
            gu = _mono(streams[su][iu]) + offsets[su]
            gv = _mono(streams[sv][iv]) + offsets[sv]
            if gu > gv + _EPS:
                offsets[sv] += gu - gv
                moved = True
        if not moved:
            return


def _causal_edges(
    streams: Mapping[str, List[Dict[str, Any]]]
) -> List[Tuple[str, int, str, int]]:
    """Happens-before pairs derivable from the fabric protocol alone."""
    edges: List[Tuple[str, int, str, int]] = []
    coord = streams.get(COORDINATOR, [])
    # anchor on the publish/resume span itself — it is the event that
    # happens-before every worker's first event; sweep_start is only a
    # (weaker) fallback for streams recorded before the job markers
    publish_idx = next(
        (
            i
            for i, e in enumerate(coord)
            if e.get("event") in ("job_published", "job_resumed")
        ),
        None,
    )
    if publish_idx is None:
        publish_idx = next(
            (i for i, e in enumerate(coord) if e.get("event") == "sweep_start"),
            None,
        )
    complete_idx = {
        e.get("shard"): i
        for i, e in enumerate(coord)
        if e.get("event") == "shard_complete"
    }
    spawn_idx = {
        e.get("worker"): i
        for i, e in enumerate(coord)
        if e.get("event") == "worker_spawned"
    }
    for worker, events in streams.items():
        if worker == COORDINATOR or not events:
            continue
        if worker in spawn_idx:
            edges.append((COORDINATOR, spawn_idx[worker], worker, 0))
        elif publish_idx is not None:
            edges.append((COORDINATOR, publish_idx, worker, 0))
        for i, e in enumerate(events):
            if e.get("event") == "shard_done" and e.get("shard") in complete_idx:
                edges.append((worker, i, COORDINATOR, complete_idx[e["shard"]]))
    return edges


# ---------------------------------------------------------------------------
# attempt extraction
# ---------------------------------------------------------------------------


class _RawAttempt:
    """Stream-order skeleton of an attempt (indices, not times)."""

    __slots__ = ("shard", "worker", "start_idx", "end_idx", "point_idxs",
                 "outcome", "opened_by")

    def __init__(self, shard: str, worker: str, start_idx: int, opened_by: str):
        self.shard = shard
        self.worker = worker
        self.start_idx = start_idx
        self.end_idx: Optional[int] = None
        self.point_idxs: List[int] = []
        self.outcome: Optional[str] = None
        self.opened_by = opened_by


def _extract_raw_attempts(
    streams: Mapping[str, List[Dict[str, Any]]]
) -> List[_RawAttempt]:
    raws: List[_RawAttempt] = []
    for worker, events in streams.items():
        if worker == COORDINATOR:
            continue
        open_by_shard: Dict[str, _RawAttempt] = {}

        def close(att: _RawAttempt, idx: Optional[int], outcome: str) -> None:
            if idx is None:
                idx = att.point_idxs[-1] if att.point_idxs else att.start_idx
            att.end_idx = idx
            att.outcome = outcome
            open_by_shard.pop(att.shard, None)

        for i, e in enumerate(events):
            kind = e.get("event")
            shard = e.get("shard")
            if kind == "shard_claimed" and isinstance(shard, str):
                stale = open_by_shard.get(shard)
                if stale is not None:  # pragma: no cover - protocol violation
                    close(stale, None, "lost")
                att = _RawAttempt(shard, worker, i, "claim")
                open_by_shard[shard] = att
                raws.append(att)
            elif kind == "shard_duplicate" and isinstance(shard, str):
                att = _RawAttempt(shard, worker, i, "duplicate")
                open_by_shard[shard] = att
                raws.append(att)
            elif kind == "point_done" and shard in open_by_shard:
                open_by_shard[shard].point_idxs.append(i)
            elif kind == "shard_done" and shard in open_by_shard:
                close(open_by_shard[shard], i, "done")
            elif kind == "fault" and shard in open_by_shard:
                outcome = "killed" if e.get("kind") == "kill" else "hung"
                close(open_by_shard[shard], i, outcome)
        for att in list(open_by_shard.values()):
            close(att, None, "duplicate" if att.opened_by == "duplicate" else "lost")
    return raws


def _steal_edges(
    raws: List[_RawAttempt],
    streams: Mapping[str, List[Dict[str, Any]]],
    offsets: Mapping[str, float],
) -> List[Tuple[str, int, str, int]]:
    """Per shard: each failed attempt precedes the next attempt's claim.

    The fabric only re-claims a shard after its previous lease died, so
    attempts at one shard are totally ordered. Victims (non-``done``
    outcomes) are ordered by their provisional start and chained before
    any finishing attempt — robust to clock skew because the *structure*
    (who failed, who finished) does not depend on timestamps.
    """
    edges: List[Tuple[str, int, str, int]] = []
    by_shard: Dict[str, List[_RawAttempt]] = {}
    for att in raws:
        by_shard.setdefault(att.shard, []).append(att)

    def g(att: _RawAttempt, idx: int) -> float:
        return _mono(streams[att.worker][idx]) + offsets[att.worker]

    for chain in by_shard.values():
        if len(chain) < 2:
            continue
        victims = sorted(
            (a for a in chain if a.outcome != "done"),
            key=lambda a: g(a, a.start_idx),
        )
        finishers = sorted(
            (a for a in chain if a.outcome == "done"),
            key=lambda a: g(a, a.start_idx),
        )
        ordered = victims + finishers
        for prev, nxt in zip(ordered, ordered[1:]):
            if prev.worker != nxt.worker and prev.end_idx is not None:
                edges.append(
                    (prev.worker, prev.end_idx, nxt.worker, nxt.start_idx)
                )
    return edges


# ---------------------------------------------------------------------------
# health metrics
# ---------------------------------------------------------------------------


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        return 0.0
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def _queue_depth_series(
    timeline: List[Dict[str, Any]], total_shards: int
) -> List[List[float]]:
    """(t, unclaimed-shard count) samples from the merged timeline."""
    state: Dict[str, str] = {}
    depth = total_shards
    series: List[List[float]] = []
    for event in timeline:
        kind = event.get("event")
        shard = event.get("shard")
        if not isinstance(shard, str):
            continue
        prev = state.get(shard, "queued")
        if kind == "shard_claimed" and prev == "queued":
            state[shard] = "claimed"
            depth -= 1
        elif kind == "shard_reassigned" and prev == "claimed":
            state[shard] = "queued"
            depth += 1
        elif kind == "shard_done":
            if prev != "done":
                state[shard] = "done"
                if prev == "queued":  # pragma: no cover - protocol violation
                    depth -= 1
        else:
            continue
        series.append([round(float(event.get("g", 0.0)), 6), depth])
    return series


def _critical_path(attempts: List[ShardAttempt]) -> List[ShardAttempt]:
    """Backward walk from the last-finishing attempt.

    The predecessor of an attempt is whichever ends latest of (a) the
    same worker's previous attempt (the worker was busy elsewhere) and
    (b) the same shard's previous attempt (the steal handoff this claim
    waited on). The chain ending at the overall last finish *is* the
    run's end-to-end critical path through claims.
    """
    if not attempts:
        return []
    current = max(attempts, key=lambda a: a.end)
    chain = [current]
    visited = {id(current)}
    while True:
        preds = [
            a
            for a in attempts
            if id(a) not in visited
            and a.end <= current.start + _EPS
            and (a.worker == current.worker or a.shard == current.shard)
        ]
        if not preds:
            break
        current = max(preds, key=lambda a: a.end)
        chain.append(current)
        visited.add(id(current))
    chain.reverse()
    return chain


def _health(
    streams: Mapping[str, List[Dict[str, Any]]],
    timeline: List[Dict[str, Any]],
    attempts: List[ShardAttempt],
    total_shards: int,
    critical_path: List[ShardAttempt],
) -> Dict[str, Any]:
    coord = streams.get(COORDINATOR, [])
    workers = sorted(w for w in streams if w != COORDINATOR)
    span_end = max((float(e.get("g", 0.0)) for e in timeline), default=0.0)

    utilization: Dict[str, Dict[str, float]] = {}
    for worker in workers:
        events = streams[worker]
        first = float(events[0].get("g", 0.0))
        last = float(events[-1].get("g", 0.0))
        busy = sum(a.duration for a in attempts if a.worker == worker)
        span = max(0.0, last - first)
        utilization[worker] = {
            "busy_s": round(busy, 6),
            "span_s": round(span, 6),
            "utilization": round(busy / span, 4) if span > 0 else 0.0,
        }

    steals = sum(1 for e in coord if e.get("event") == "shard_reassigned")
    if not coord:
        claims: Dict[str, int] = {}
        for a in attempts:
            if a.outcome != "duplicate":
                claims[a.shard] = claims.get(a.shard, 0) + 1
        steals = sum(n - 1 for n in claims.values() if n > 1)

    committed_walls = [
        (a, a.duration) for a in attempts if a.committed and a.duration > 0
    ]
    median_wall = _median([w for _a, w in committed_walls])
    stragglers = [
        {
            "shard": a.shard,
            "worker": a.worker,
            "duration_s": round(w, 6),
            "median_s": round(median_wall, 6),
        }
        for a, w in committed_walls
        if median_wall > 0 and w > 2.0 * median_wall
    ]

    path_busy = sum(a.duration for a in critical_path)
    return {
        "workers": len(workers),
        "shards": total_shards,
        "attempts": len(attempts),
        "committed": sum(1 for a in attempts if a.committed),
        "steals": steals,
        "respawns": sum(
            1
            for e in coord
            if e.get("event") == "worker_spawned" and e.get("respawn")
        ),
        "worker_deaths": sum(
            1 for e in coord if e.get("event") == "worker_dead"
        ),
        "faults": {
            "kill": sum(
                1 for a in attempts if a.outcome == "killed"
            ),
            "hang": sum(1 for a in attempts if a.outcome == "hung"),
            "duplicate": sum(
                1 for a in attempts if a.outcome == "duplicate"
            ),
        },
        "span_s": round(span_end, 6),
        "utilization": utilization,
        "queue_depth": _queue_depth_series(timeline, total_shards),
        "stragglers": stragglers,
        "critical_path_s": round(path_busy, 6),
        "critical_path_frac": (
            round(path_busy / span_end, 4) if span_end > 0 else 0.0
        ),
    }


# ---------------------------------------------------------------------------
# assembly
# ---------------------------------------------------------------------------


def assemble_trace(fabric_dir: Union[str, Path]) -> FabricTrace:
    """Merge a job directory's streams into one causal timeline.

    Raises ``ValueError`` when the directory holds no job.
    """
    root = Path(fabric_dir)
    transport = FileTransport(root)
    if not transport.has_job():
        raise ValueError(f"no fabric job at {root}")
    job = transport.read_job()
    shard_ids = [str(s["shard_id"]) for s in job.get("shards", ())]

    streams = _load_streams(root)
    offsets = {name: _initial_offset(events) for name, events in streams.items()}

    # pass 1: protocol edges (publish/spawn/complete) fix gross skew
    _relax_offsets(streams, offsets, _causal_edges(streams))
    # pass 2: steal handoffs, ordered by the now-plausible clock
    raws = _extract_raw_attempts(streams)
    steal_edges = _steal_edges(raws, streams, offsets)
    if steal_edges:
        _relax_offsets(
            streams, offsets, _causal_edges(streams) + steal_edges
        )

    # stamp the rebased global time onto every event, origin at 0
    g_min = min(
        (
            _mono(e) + offsets[name]
            for name, events in streams.items()
            for e in events
        ),
        default=0.0,
    )
    for name, events in streams.items():
        for e in events:
            e["g"] = round(_mono(e) + offsets[name] - g_min, 6)
    offsets = {name: off - g_min for name, off in offsets.items()}

    timeline = sorted(
        (dict(e, stream=name) for name, events in streams.items() for e in events),
        key=lambda e: (e["g"], e["stream"]),
    )

    # materialise attempts on the global clock, numbering per shard
    per_shard: Dict[str, List[_RawAttempt]] = {}
    for raw in raws:
        per_shard.setdefault(raw.shard, []).append(raw)
    attempts: List[ShardAttempt] = []
    raw_to_attempt: Dict[int, ShardAttempt] = {}
    for shard, chain in per_shard.items():
        chain.sort(key=lambda r: streams[r.worker][r.start_idx]["g"])
        for n, raw in enumerate(chain, start=1):
            events = streams[raw.worker]
            att = ShardAttempt(
                shard=shard,
                worker=raw.worker,
                index=n,
                start=events[raw.start_idx]["g"],
                end=events[raw.end_idx]["g"],
                outcome=raw.outcome or "lost",
                points=[events[i] for i in raw.point_idxs],
            )
            attempts.append(att)
            raw_to_attempt[id(raw)] = att
    attempts.sort(key=lambda a: (a.start, a.shard, a.index))

    # commit attribution + validation against the result files
    problems: List[str] = []
    for shard in shard_ids:
        result = transport.load_result(shard)
        if result is None:
            continue
        owner = str(result.get("worker"))
        candidates = [
            a
            for a in attempts
            if a.shard == shard
            and a.worker == owner
            and a.outcome in ("done", "duplicate")
        ]
        if not candidates:
            problems.append(
                f"{shard}: result committed by {owner!r} but no completed "
                "attempt by that worker appears in the streams"
            )
            continue
        committed = next(
            (a for a in candidates if a.outcome == "done"), candidates[0]
        )
        committed.committed = True
        executed_keys = {
            str(rec["key"])
            for rec in result.get("records", ())
            if not rec.get("cached")
        }
        attempt_keys = {
            str(p.get("key"))
            for p in committed.points
            if not p.get("cached")
        }
        missing = executed_keys - attempt_keys
        if missing:
            problems.append(
                f"{shard}: {len(missing)} executed point(s) not narrated by "
                f"the committed attempt {committed.label}"
            )

    critical_path = _critical_path(attempts)
    health = _health(streams, timeline, attempts, len(shard_ids), critical_path)
    return FabricTrace(
        fabric_dir=str(root),
        job_name=str(job.get("name", root.name)),
        streams=streams,
        offsets=offsets,
        timeline=timeline,
        attempts=attempts,
        health=health,
        critical_path=critical_path,
        problems=problems,
    )


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------


def export_perfetto(trace: FabricTrace, path: Union[str, Path]) -> int:
    """Write the trace as Chrome/Perfetto ``trace_event`` JSON.

    One track ("thread") per worker, a complete span per shard attempt,
    nested spans per executed point, and an instant marker per steal
    handoff — all through the simulator's own
    :func:`~repro.projections.export.write_chrome_trace`, so the output
    honours the same format invariants the trace-format tests enforce.
    Returns the number of trace events written.
    """
    from repro.projections.export import write_chrome_trace
    from repro.runtime.tracing import MigrationEvent, TaskEvent, TraceLog

    ordinal = {worker: i for i, worker in enumerate(trace.workers)}
    log = TraceLog(enabled=True)
    log.core_names = {i: worker for worker, i in ordinal.items()}

    tasks: List[TaskEvent] = []
    for attempt in trace.attempts:
        tid = ordinal[attempt.worker]
        cpu = sum(
            float(p.get("wall_s", 0.0))
            for p in attempt.points
            if not p.get("cached")
        )
        tasks.append(
            TaskEvent(
                core_id=tid,
                chare=(f"{attempt.shard} ({attempt.outcome})", attempt.index),
                iteration=attempt.index,
                start=attempt.start,
                end=max(attempt.end, attempt.start),
                cpu_time=cpu,
            )
        )
        for p in attempt.points:
            end = float(p["g"])
            wall = float(p.get("wall_s", 0.0))
            start = min(max(attempt.start, end - wall), end)
            tasks.append(
                TaskEvent(
                    core_id=tid,
                    chare=(str(p.get("label", "?")), attempt.index),
                    iteration=attempt.index,
                    start=start,
                    end=end,
                    cpu_time=wall,
                )
            )
    for task in sorted(tasks, key=lambda t: (t.start, t.core_id)):
        log.add_task(task)

    handoffs: List[MigrationEvent] = []
    by_shard: Dict[str, List[ShardAttempt]] = {}
    for attempt in trace.attempts:
        if attempt.outcome != "duplicate":
            by_shard.setdefault(attempt.shard, []).append(attempt)
    for chain in by_shard.values():
        chain.sort(key=lambda a: a.index)
        for prev, nxt in zip(chain, chain[1:]):
            if prev.worker != nxt.worker:
                handoffs.append(
                    MigrationEvent(
                        time=nxt.start,
                        chare=(nxt.shard, nxt.index),
                        src=ordinal[prev.worker],
                        dst=ordinal[nxt.worker],
                        state_bytes=0.0,
                    )
                )
    for handoff in sorted(handoffs, key=lambda m: m.time):
        log.add_migration(handoff)

    return write_chrome_trace(log, str(path), job_name=trace.job_name)


# ---------------------------------------------------------------------------
# live status
# ---------------------------------------------------------------------------


def _last_event(path: Path) -> Optional[Dict[str, Any]]:
    """The final complete event of a stream (cheap tail read)."""
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            fh.seek(max(0, size - 65536))
            chunk = fh.read()
    except OSError:
        return None
    last = None
    for line in chunk.decode("utf-8", "replace").splitlines():
        try:
            event = parse_progress_line(line)
        except ValueError:
            continue
        if event is not None:
            last = event
    return last


def fabric_status(fabric_dir: Union[str, Path]) -> Dict[str, Any]:
    """A point-in-time snapshot of a fabric job directory.

    Read-only over ``queue/``, ``leases/``, ``results/``, ``workers/``
    and the event streams — safe to run against a *live* job from any
    host that shares the directory. Lease ages are measured against
    this observer's wall clock (an approximation the staleness rule
    itself refuses to rely on; good enough for eyeballs).
    """
    root = Path(fabric_dir)
    transport = FileTransport(root)
    if not transport.has_job():
        raise ValueError(f"no fabric job at {root}")
    job = transport.read_job()
    shard_ids = [str(s["shard_id"]) for s in job.get("shards", ())]
    done = set(transport.completed_shard_ids())

    now = time.time()
    leases: List[Dict[str, Any]] = []
    leases_dir = root / "leases"
    if leases_dir.is_dir():
        for path in sorted(leases_dir.glob("*.json")):
            shard = path.stem
            if shard in done:
                continue
            try:
                age = max(0.0, now - path.stat().st_mtime)
            except OSError:
                continue
            try:
                with open(path) as fh:
                    lease = json.load(fh)
            except (OSError, ValueError):
                lease = {}
            leases.append(
                {
                    "shard": shard,
                    "worker": lease.get("worker"),
                    "age_s": round(age, 3),
                }
            )
    leased = {entry["shard"] for entry in leases}
    queued = [s for s in shard_ids if s not in done and s not in leased]

    workers: List[Dict[str, Any]] = []
    workers_dir = root / "workers"
    if workers_dir.is_dir():
        for path in sorted(workers_dir.glob("*.json")):
            try:
                with open(path) as fh:
                    registration = json.load(fh)
            except (OSError, ValueError):
                registration = {"worker": path.stem}
            last = _last_event(transport.events_path(path.stem))
            workers.append(
                {
                    "worker": str(registration.get("worker", path.stem)),
                    "pid": registration.get("pid"),
                    "host": registration.get("host"),
                    "last_event": None if last is None else last.get("event"),
                    "last_t": None if last is None else last.get("t"),
                }
            )

    return {
        "fabric_dir": str(root),
        "name": str(job.get("name", root.name)),
        "points": len(job.get("points", ())),
        "shards": len(shard_ids),
        "done": len(done),
        "leased": leases,
        "queued": queued,
        "workers": workers,
        "stopped": transport.stopped(),
    }


# ---------------------------------------------------------------------------
# text rendering
# ---------------------------------------------------------------------------

_BAR_WIDTH = 24


def _bar(frac: float, width: int = _BAR_WIDTH) -> str:
    filled = max(0, min(width, int(round(frac * width))))
    return "#" * filled + "." * (width - filled)


def format_trace_text(trace: FabricTrace) -> str:
    """Human-oriented rendering of an assembled trace."""
    health = trace.health
    lines = [
        f"fabric trace: {trace.job_name} ({trace.fabric_dir})",
        (
            f"  {health['workers']} worker(s), {health['shards']} shard(s), "
            f"{health['attempts']} attempt(s) "
            f"({health['committed']} committed), span {health['span_s']:.3f}s"
        ),
        (
            f"  steals={health['steals']} respawns={health['respawns']} "
            f"deaths={health['worker_deaths']} "
            f"faults: kill={health['faults']['kill']} "
            f"hang={health['faults']['hang']} "
            f"dup={health['faults']['duplicate']}"
        ),
        "  utilization:",
    ]
    for worker in trace.workers:
        stats = health["utilization"][worker]
        lines.append(
            f"    {worker:<12} [{_bar(stats['utilization'])}] "
            f"{stats['utilization'] * 100:5.1f}%  "
            f"busy {stats['busy_s']:.3f}s / span {stats['span_s']:.3f}s"
        )
    if health["stragglers"]:
        lines.append("  stragglers (wall > 2x median):")
        for s in health["stragglers"]:
            lines.append(
                f"    {s['shard']} on {s['worker']}: {s['duration_s']:.3f}s "
                f"(median {s['median_s']:.3f}s)"
            )
    lines.append(
        f"  critical path ({health['critical_path_s']:.3f}s, "
        f"{health['critical_path_frac'] * 100:.0f}% of span):"
    )
    for attempt in trace.critical_path:
        lines.append(
            f"    {attempt.start:8.3f}s  {attempt.label:<14} on "
            f"{attempt.worker:<8} {attempt.duration:7.3f}s  {attempt.outcome}"
        )
    if trace.problems:
        lines.append("  PROBLEMS:")
        for problem in trace.problems:
            lines.append(f"    ! {problem}")
    else:
        lines.append(
            "  causality: every executed point attributed to exactly one "
            "committed attempt"
        )
    return "\n".join(lines)


def format_status_text(status: Mapping[str, Any]) -> str:
    """Human-oriented rendering of a live status snapshot."""
    done, shards = status["done"], status["shards"]
    frac = done / shards if shards else 1.0
    lines = [
        f"fabric status: {status['name']} ({status['fabric_dir']})",
        (
            f"  shards [{_bar(frac)}] {done}/{shards} done, "
            f"{len(status['leased'])} leased, {len(status['queued'])} queued"
            + ("  [stop flag raised]" if status["stopped"] else "")
        ),
    ]
    for lease in status["leased"]:
        lines.append(
            f"    lease {lease['shard']} -> {lease['worker']} "
            f"(refreshed {lease['age_s']:.1f}s ago)"
        )
    if status["workers"]:
        lines.append(f"  workers ({len(status['workers'])}):")
        for w in status["workers"]:
            last = (
                f"last event {w['last_event']!r} at t={w['last_t']}"
                if w["last_event"]
                else "no events yet"
            )
            lines.append(
                f"    {w['worker']:<12} pid={w['pid']} host={w['host']} {last}"
            )
    return "\n".join(lines)

"""Imbalance observatory: per-chare lineage, flow, and counterfactual bounds.

The audit trail (:mod:`repro.telemetry.audit`) records what the balancer
*decided* and the ledger (:mod:`repro.obs.ledger`) records where wall
clock *went*; this module records what the load actually *was*, object
by object, and what each LB step did about it:

* **lineage** — one load sample per (chare, iteration) plus every
  migration, reduced to a residency graph: which core each chare lived
  on over which iteration span, and which LB step moved it;
* **imbalance metrics** — per-iteration λ = max/avg core load,
  coefficient of variation, Gini coefficient and per-core load shares,
  all computed from the same samples;
* **counterfactual bounds** — each LB step's interval replayed under
  (a) the pre-step mapping (no-migration counterfactual) and (b) an
  oracle fractional balance (total/P lower bound), yielding a
  ``recovered / recoverable`` efficiency per step and per run.

The chare CPU demand of an iteration is a function of the chare and the
iteration number only — never of the mapping — so replaying an interval
under a different placement with the recorded samples is exact, not an
estimate.

Like the ledger, the recorder never *accumulates* floats: every sample
is an exact dyadic rational, and all aggregation happens in
:class:`fractions.Fraction`, so the headline invariants hold exactly
rather than to within rounding: λ ≥ 1, Gini ∈ [0, 1), CoV = 0 iff the
loads are perfectly balanced, oracle ≤ observed for every step, and the
metrics are permutation-invariant over cores. Floats appear only in the
JSON payload, derived from the exact values — which is also why the two
backends produce payloads that compare ``==``.

The null-hook doctrine applies: backends carry a ``lineage`` attribute
that defaults to ``None`` and pay one identity check per hook site, so
runs without a recorder attached are byte-identical to recorder-free
builds.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "LINEAGE_SCHEMA",
    "LineageError",
    "LineageRecorder",
    "imbalance_metrics",
    "format_lineage_text",
    "lineage_dot",
]

#: Version stamp carried by every lineage payload.
LINEAGE_SCHEMA = 1

ChareKey = Tuple[str, int]

_ZERO = Fraction(0)


class LineageError(RuntimeError):
    """A lineage invariant was violated (bad hook order or broken graph)."""


def _chare_str(key: ChareKey) -> str:
    return f"{key[0]}[{key[1]}]"


# ---------------------------------------------------------------------------
# imbalance metrics (pure, exact)
# ---------------------------------------------------------------------------


def imbalance_metrics(loads: Sequence[Any]) -> Dict[str, float]:
    """Imbalance statistics of one per-core load vector, computed exactly.

    ``loads`` is one non-negative number per core (floats, ints or
    Fractions). All aggregation is rational, floats only at the end, so:

    * ``lambda`` = max/mean ≥ 1.0 always (exactly 1.0 iff balanced);
    * ``cov`` = stddev/mean is 0.0 **iff** every load is equal;
    * ``gini`` ∈ [0, (n-1)/n] ⊂ [0, 1);
    * every statistic is invariant under permuting the cores.

    An all-zero vector is defined as perfectly balanced (λ = 1).
    """
    if not loads:
        raise ValueError("imbalance_metrics needs at least one core load")
    xs = [Fraction(x) for x in loads]
    if any(x < 0 for x in xs):
        raise ValueError("core loads must be non-negative")
    n = len(xs)
    total = sum(xs, _ZERO)
    if total == 0:
        return {
            "lambda": 1.0, "cov": 0.0, "gini": 0.0,
            "max_s": 0.0, "mean_s": 0.0, "total_s": 0.0,
        }
    mean = total / n
    mx = max(xs)
    var = sum(((x - mean) ** 2 for x in xs), _ZERO) / n
    # Gini via the sorted-rank identity: sum_i (2i - n + 1) x_(i) / (n T)
    ranked = sorted(xs)
    gini = sum(
        ((2 * i - n + 1) * x for i, x in enumerate(ranked)), _ZERO
    ) / (n * total)
    return {
        "lambda": float(mx / mean),
        "cov": math.sqrt(float(var / (mean * mean))),
        "gini": float(gini),
        "max_s": float(mx),
        "mean_s": float(mean),
        "total_s": float(total),
    }


# ---------------------------------------------------------------------------
# the recorder
# ---------------------------------------------------------------------------


class LineageRecorder:
    """Per-chare load samples + migration lineage for one job's run.

    Parameters
    ----------
    job:
        Name tag of the observed job (cosmetic, carried in the payload).
    core_ids:
        The job's cores — the only cores loads are attributed to.

    The simulation side drives four hooks:

    * :meth:`record_placement` — the initial chare → core mapping,
      captured once before the first iteration;
    * :meth:`mark_iteration` — iteration begin times;
    * :meth:`record_sample` — one completed task: (chare, iteration,
      executing core, accrued CPU seconds);
    * :meth:`record_lb_step` — one LB step's migrations, stamped with
      the simulated time and the first iteration run under the new
      mapping;
    * :meth:`close` — seal the recorder at job completion.
    """

    def __init__(self, job: str = "app", core_ids: Sequence[int] = ()) -> None:
        self.job = job
        self.core_ids: Tuple[int, ...] = tuple(sorted(int(c) for c in core_ids))
        if len(set(self.core_ids)) != len(self.core_ids):
            raise ValueError("core_ids contains duplicates")
        self._placement: Dict[ChareKey, int] = {}
        # iteration -> chare -> (core, cpu_s); dict-keyed, so the two
        # backends' different completion orders compare equal
        self._samples: Dict[int, Dict[ChareKey, Tuple[int, float]]] = {}
        self._marks: List[float] = []
        self._steps: List[Dict[str, Any]] = []
        self._close_bg: Optional[Dict[int, float]] = None
        self.closed_at: Optional[float] = None

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def record_placement(self, mapping: Mapping[ChareKey, int]) -> None:
        """Capture the initial chare → core mapping (once, before start)."""
        if self._placement:
            raise LineageError("placement already recorded")
        cores = set(self.core_ids)
        for key, cid in mapping.items():
            if cid not in cores:
                raise LineageError(
                    f"chare {key!r} placed on core {cid}, not one of the "
                    f"job's cores {self.core_ids}"
                )
        self._placement = dict(mapping)

    def mark_iteration(self, iteration: int, t: float) -> None:
        """Record that ``iteration`` begins at simulated time ``t``."""
        if self.closed_at is not None:
            return
        if iteration != len(self._marks):
            raise LineageError(
                f"iteration mark {iteration} out of order "
                f"(expected {len(self._marks)})"
            )
        if self._marks and t < self._marks[-1]:
            raise LineageError("iteration marks must be non-decreasing")
        self._marks.append(t)

    def record_sample(
        self, key: ChareKey, iteration: int, core_id: int, cpu_time: float
    ) -> None:
        """Record one completed task's accrued CPU seconds."""
        if self.closed_at is not None:
            return
        if cpu_time < 0.0:
            raise LineageError(f"negative CPU sample for {key!r}: {cpu_time}")
        per = self._samples.setdefault(iteration, {})
        if key in per:
            raise LineageError(
                f"duplicate sample for chare {key!r} in iteration {iteration}"
            )
        per[key] = (core_id, cpu_time)

    def record_lb_step(
        self,
        *,
        time: float,
        iteration: int,
        migrations: Sequence[Tuple[ChareKey, int, int]],
        bg_cpu: Optional[Mapping[int, float]] = None,
    ) -> None:
        """Record one LB step: ``iteration`` is the first iteration that
        will run under the post-step mapping.

        ``bg_cpu`` is the *cumulative* CPU other owners have consumed on
        each of the job's cores up to this step — the interference
        boundary snapshot the counterfactual replay charges each window
        with. Without it the replay degrades to pure app CPU.
        """
        if self.closed_at is not None:
            return
        if self._steps:
            prev = self._steps[-1]
            if time < prev["time"] or iteration <= prev["iteration"]:
                raise LineageError("LB steps must be ordered in time")
        self._steps.append(
            {
                "time": time,
                "iteration": int(iteration),
                "migrations": [
                    (key, int(src), int(dst)) for key, src, dst in migrations
                ],
                "bg_cpu": None if bg_cpu is None else dict(bg_cpu),
            }
        )

    def close(
        self, t_end: float, *, bg_cpu: Optional[Mapping[int, float]] = None
    ) -> None:
        """Seal the recorder at job completion time ``t_end``.

        ``bg_cpu`` is the closing cumulative interference snapshot
        (see :meth:`record_lb_step`).
        """
        if self.closed_at is not None:
            raise LineageError("lineage recorder already closed")
        self._close_bg = None if bg_cpu is None else dict(bg_cpu)
        self.closed_at = t_end

    @property
    def closed(self) -> bool:
        return self.closed_at is not None

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def n_iterations(self) -> int:
        return len(self._marks)

    def samples(self) -> Dict[int, Dict[ChareKey, Tuple[int, float]]]:
        """The raw (iteration → chare → (core, cpu)) sample store."""
        return {i: dict(per) for i, per in self._samples.items()}

    def _mappings(self) -> List[Dict[ChareKey, int]]:
        """Mapping snapshots: entry k is the mapping *after* step k-1
        (entry 0 is the initial placement). Validates every migration's
        source against the chare's current residency."""
        if not self._placement:
            raise LineageError("no placement recorded")
        snaps = [dict(self._placement)]
        current = dict(self._placement)
        for step in self._steps:
            for key, src, dst in step["migrations"]:
                if key not in current:
                    raise LineageError(f"migration of unplaced chare {key!r}")
                if current[key] != src:
                    raise LineageError(
                        f"chare {key!r} migrated from core {src} but "
                        f"resides on core {current[key]}"
                    )
                current[key] = dst
            snaps.append(dict(current))
        return snaps

    def residencies(self) -> Dict[ChareKey, List[Dict[str, Any]]]:
        """Chare → residency intervals ``[from_iteration, to_iteration)``.

        Intervals tile each chare's lifetime ``[0, n_iterations)``
        contiguously; each interval after the first carries the index of
        the LB step that opened it.
        """
        self._mappings()  # validates sources
        n = self.n_iterations
        out: Dict[ChareKey, List[Dict[str, Any]]] = {}
        for key in sorted(self._placement):
            out[key] = [
                {
                    "core": self._placement[key],
                    "from_iteration": 0,
                    "to_iteration": n,
                    "lb_step": None,
                }
            ]
        for k, step in enumerate(self._steps):
            boundary = step["iteration"]
            for key, _src, dst in step["migrations"]:
                intervals = out[key]
                intervals[-1]["to_iteration"] = boundary
                intervals.append(
                    {
                        "core": dst,
                        "from_iteration": boundary,
                        "to_iteration": n,
                        "lb_step": k,
                    }
                )
        return out

    def _validate_samples(self) -> None:
        """Every (chare, iteration) sample must sit on the chare's
        residency core, and every placed chare must have exactly one
        sample per iteration."""
        snaps = self._mappings()
        bounds = [s["iteration"] for s in self._steps]
        n = self.n_iterations
        expected = set(self._placement)
        for i in range(n):
            per = self._samples.get(i, {})
            if set(per) != expected:
                missing = sorted(expected - set(per))[:3]
                extra = sorted(set(per) - expected)[:3]
                raise LineageError(
                    f"iteration {i}: sample set does not match the placed "
                    f"chares (missing {missing}, unplaced {extra})"
                )
            # snapshot index = number of steps at or before iteration i
            snap = snaps[_steps_before(bounds, i)]
            for key, (core, _cpu) in per.items():
                if snap[key] != core:
                    raise LineageError(
                        f"iteration {i}: chare {key!r} sampled on core "
                        f"{core} but resides on core {snap[key]}"
                    )

    # ------------------------------------------------------------------
    # exact aggregation
    # ------------------------------------------------------------------
    def _interval_loads(
        self, lo: int, hi: int, mapping: Optional[Mapping[ChareKey, int]] = None
    ) -> Dict[int, Fraction]:
        """Exact per-core load over iterations ``[lo, hi)``.

        With ``mapping`` the samples are re-assigned to the given cores
        (a counterfactual replay); without it the observed cores are
        used.
        """
        loads: Dict[int, Fraction] = {cid: _ZERO for cid in self.core_ids}
        for i in range(lo, hi):
            for key, (core, cpu) in self._samples.get(i, {}).items():
                cid = core if mapping is None else mapping[key]
                loads[cid] += Fraction(cpu)
        return loads

    def _step_bounds(self) -> List[Tuple[int, int]]:
        """Iteration interval ``[lo, hi)`` governed by each LB step."""
        n = self.n_iterations
        bounds = []
        for k, step in enumerate(self._steps):
            lo = step["iteration"]
            hi = self._steps[k + 1]["iteration"] if k + 1 < len(self._steps) else n
            bounds.append((lo, hi))
        return bounds

    def _bg_snapshots(self) -> List[Optional[Dict[int, Fraction]]]:
        """Cumulative interference at each boundary: run start, every
        LB step, run end. ``None`` where no snapshot was recorded."""
        zero = {cid: _ZERO for cid in self.core_ids}
        snaps: List[Optional[Dict[int, Fraction]]] = [zero]
        for step in self._steps:
            bg = step["bg_cpu"]
            snaps.append(
                None if bg is None
                else {cid: Fraction(bg.get(cid, 0.0)) for cid in self.core_ids}
            )
        bg = self._close_bg
        snaps.append(
            None if bg is None
            else {cid: Fraction(bg.get(cid, 0.0)) for cid in self.core_ids}
        )
        return snaps

    @staticmethod
    def _bg_delta(
        a: Optional[Dict[int, Fraction]],
        b: Optional[Dict[int, Fraction]],
        core_ids: Tuple[int, ...],
    ) -> Dict[int, Fraction]:
        if a is None or b is None:
            return {cid: _ZERO for cid in core_ids}
        return {cid: b[cid] - a[cid] for cid in core_ids}

    def counterfactuals(self) -> List[Dict[str, Any]]:
        """Per-step counterfactual bounds on *effective* load, exactly.

        A core's effective load over step k's interval is the app CPU
        assigned to it plus the interference other jobs stole from it
        there (the quantity the paper's Algorithm 1 balances — an
        interference-aware step deliberately *skews* raw app CPU, so
        replaying raw CPU would score it backwards). App CPU is a
        function of (chare, iteration) only, so re-assigning it under
        the pre-step mapping is exact; interference is pinned to the
        core it was measured on in all three variants.

        ``observed`` is the realised max effective core load; ``nolb``
        replays the interval under the pre-step mapping; ``oracle`` is
        the fractional-balance lower bound (total/P, i.e. the mean).
        ``oracle ≤ observed`` holds by construction (a mean never
        exceeds a max); ``observed ≤ nolb`` is the genuine claim that
        the step helped, reported via ``sane``.
        """
        snaps = self._mappings()
        bg_snaps = self._bg_snapshots()
        P = len(self.core_ids)
        out = []
        for k, (lo, hi) in enumerate(self._step_bounds()):
            interference = self._bg_delta(
                bg_snaps[k + 1], bg_snaps[k + 2], self.core_ids
            )
            app_obs = self._interval_loads(lo, hi)
            app_nolb = self._interval_loads(lo, hi, mapping=snaps[k])
            observed = {c: app_obs[c] + interference[c] for c in self.core_ids}
            nolb = {c: app_nolb[c] + interference[c] for c in self.core_ids}
            obs_max = max(observed.values(), default=_ZERO)
            nolb_max = max(nolb.values(), default=_ZERO)
            total = sum(observed.values(), _ZERO)
            oracle = total / P
            recovered = nolb_max - obs_max
            recoverable = nolb_max - oracle
            out.append(
                {
                    "step": k,
                    "interval": (lo, hi),
                    "interference": sum(interference.values(), _ZERO),
                    "observed_max": obs_max,
                    "nolb_max": nolb_max,
                    "oracle_max": oracle,
                    "recovered": recovered,
                    "recoverable": recoverable,
                    "efficiency": (
                        float(recovered / recoverable) if recoverable > 0 else None
                    ),
                    "sane": oracle <= obs_max <= nolb_max,
                }
            )
        return out

    # ------------------------------------------------------------------
    # payload
    # ------------------------------------------------------------------
    def payload(
        self, audit: Optional[Sequence[Mapping[str, Any]]] = None
    ) -> Dict[str, Any]:
        """JSON-safe reduction (floats derived from the exact values).

        ``audit`` (optional) is the run's audit-trail record list; step
        k is joined with audit record k, contributing the strategy name
        and each migration's accept reason. Deterministic: two identical
        runs — and the two backends — serialise byte-identically.
        """
        if self.closed_at is None:
            raise LineageError("lineage recorder still open — close() it first")
        self._validate_samples()
        if audit is not None and len(audit) != len(self._steps):
            raise LineageError(
                f"audit trail has {len(audit)} steps but lineage recorded "
                f"{len(self._steps)}"
            )
        n = self.n_iterations
        per_iteration = []
        for i in range(n):
            loads = self._interval_loads(i, i + 1)
            metrics = imbalance_metrics([loads[cid] for cid in self.core_ids])
            total = sum(loads.values(), _ZERO)
            row = {
                "iteration": i,
                "start_s": self._marks[i],
                "lambda": metrics["lambda"],
                "cov": metrics["cov"],
                "gini": metrics["gini"],
                "max_s": metrics["max_s"],
                "total_s": metrics["total_s"],
                "loads": {str(cid): float(loads[cid]) for cid in self.core_ids},
                "shares": {
                    str(cid): (float(loads[cid] / total) if total else 0.0)
                    for cid in self.core_ids
                },
            }
            per_iteration.append(row)

        steps = []
        recovered_total = _ZERO
        recoverable_total = _ZERO
        for k, cf in enumerate(self.counterfactuals()):
            step = self._steps[k]
            record = audit[k] if audit is not None else None
            if record is not None and record.get("iteration") is not None:
                if int(record["iteration"]) != step["iteration"]:
                    raise LineageError(
                        f"step {k}: audit iteration {record['iteration']} != "
                        f"lineage iteration {step['iteration']}"
                    )
            migrations = [
                {
                    "chare": _chare_str(key),
                    "src": src,
                    "dst": dst,
                    "reason": _join_reason(record, key, src, dst),
                }
                for key, src, dst in step["migrations"]
            ]
            recovered_total += cf["recovered"]
            recoverable_total += cf["recoverable"]
            steps.append(
                {
                    "step": k,
                    "time": step["time"],
                    "iteration": step["iteration"],
                    "iterations": list(cf["interval"]),
                    "migrations": migrations,
                    "strategy": (
                        record.get("strategy") if record is not None else None
                    ),
                    "rejected": _count_rejected(record),
                    "interference_s": float(cf["interference"]),
                    "observed_max_s": float(cf["observed_max"]),
                    "nolb_max_s": float(cf["nolb_max"]),
                    "oracle_max_s": float(cf["oracle_max"]),
                    "lambda_observed": (
                        float(cf["observed_max"] / cf["oracle_max"])
                        if cf["oracle_max"] > 0 else 1.0
                    ),
                    "lambda_nolb": (
                        float(cf["nolb_max"] / cf["oracle_max"])
                        if cf["oracle_max"] > 0 else 1.0
                    ),
                    "recovered_s": float(cf["recovered"]),
                    "recoverable_s": float(cf["recoverable"]),
                    "efficiency": cf["efficiency"],
                    "sane": cf["sane"],
                }
            )

        residencies = {
            _chare_str(key): intervals
            for key, intervals in self.residencies().items()
        }
        return {
            "schema": LINEAGE_SCHEMA,
            "job": self.job,
            "cores": list(self.core_ids),
            "iterations": n,
            "wall_s": self.closed_at,
            "placement": {
                _chare_str(key): self._placement[key]
                for key in sorted(self._placement)
            },
            "residencies": residencies,
            "per_iteration": per_iteration,
            "steps": steps,
            "run": self._run_block(steps, recovered_total, recoverable_total),
        }

    def _run_block(
        self,
        steps: List[Dict[str, Any]],
        recovered: Fraction,
        recoverable: Fraction,
    ) -> Dict[str, Any]:
        n = self.n_iterations
        final_lo = self._steps[-1]["iteration"] if self._steps else 0
        bg_snaps = self._bg_snapshots()
        interference = self._bg_delta(bg_snaps[-2], bg_snaps[-1], self.core_ids)
        app_loads = self._interval_loads(final_lo, n)
        loads = {c: app_loads[c] + interference[c] for c in self.core_ids}
        hotspot = None
        total = sum(loads.values(), _ZERO)
        if total > 0:
            # max effective load wins; ties break to the lowest core id
            hot = max(self.core_ids, key=lambda cid: (loads[cid], -cid))
            on_core = sorted(
                (
                    (sum(
                        (Fraction(self._samples[i][key][1])
                         for i in range(final_lo, n)
                         if self._samples.get(i, {}).get(key, (None,))[0] == hot),
                        _ZERO,
                    ), key)
                    for key in self._placement
                ),
                key=lambda pair: (-pair[0], pair[1]),
            )
            hotspot = {
                "core": hot,
                "load_s": float(loads[hot]),
                "interference_s": float(interference[hot]),
                "share": float(loads[hot] / total),
                "chares": [
                    {"chare": _chare_str(key), "cpu_s": float(cpu)}
                    for cpu, key in on_core[:3]
                    if cpu > 0
                ],
            }
        return {
            "lb_steps": len(steps),
            "migrations": sum(len(s["migrations"]) for s in steps),
            "recovered_s": float(recovered),
            "recoverable_s": float(recoverable),
            "efficiency": (
                float(recovered / recoverable) if recoverable > 0 else None
            ),
            "sane": all(s["sane"] for s in steps),
            "residual_hotspot": hotspot,
        }


def _steps_before(bounds: List[int], iteration: int) -> int:
    """How many LB steps precede ``iteration`` (bounds is sorted)."""
    count = 0
    for b in bounds:
        if b <= iteration:
            count += 1
    return count


def _join_reason(
    record: Optional[Mapping[str, Any]], key: ChareKey, src: int, dst: int
) -> Optional[str]:
    """The audit candidate reason for one committed migration."""
    if record is None:
        return None
    want = [key[0], int(key[1])]
    for cand in record.get("candidates", ()):
        if (
            cand.get("chare") == want
            and cand.get("src") == src
            and cand.get("dst") == dst
        ):
            return cand.get("reason")
    return None


def _count_rejected(record: Optional[Mapping[str, Any]]) -> Optional[int]:
    if record is None:
        return None
    return sum(
        1 for c in record.get("candidates", ()) if c.get("outcome") == "rejected"
    )


# ---------------------------------------------------------------------------
# rendering (the `repro lineage` flow summary)
# ---------------------------------------------------------------------------


def _bar(value: float, lo: float, hi: float, width: int = 20) -> str:
    """A fixed-width textual gauge of ``value`` within ``[lo, hi]``."""
    if hi <= lo:
        return "#" * width
    frac = (value - lo) / (hi - lo)
    n = max(0, min(width, int(round(frac * width))))
    return "#" * n + "." * (width - n)


def format_lineage_text(payload: Mapping[str, Any], *, label: Optional[str] = None) -> str:
    """Human-readable flow summary of one lineage payload."""
    rows = payload["per_iteration"]
    run = payload["run"]
    head = (
        f"{payload['job']}: {payload['iterations']} iterations x "
        f"{len(payload['cores'])} cores, wall {payload['wall_s']:.6f}s — "
        f"{run['lb_steps']} LB steps, {run['migrations']} migrations"
    )
    lines = [f"{label}: {head}" if label else head]
    if rows:
        lams = [r["lambda"] for r in rows]
        lo, hi = min(lams), max(lams)
        lines.append(
            f"  per-iteration imbalance λ = max/avg (range {lo:.3f}..{hi:.3f}):"
        )
        for r in rows:
            lines.append(
                f"    iter {r['iteration']:>3}  λ {r['lambda']:6.3f}  "
                f"cov {r['cov']:5.3f}  gini {r['gini']:5.3f}  "
                f"|{_bar(r['lambda'], 1.0, max(hi, 1.0 + 1e-9))}|"
            )
    for s in payload["steps"]:
        eff = (
            f"{100.0 * s['efficiency']:.0f}% of achievable"
            if s["efficiency"] is not None
            else "nothing to recover"
        )
        strategy = f" [{s['strategy']}]" if s.get("strategy") else ""
        sane = "" if s["sane"] else "  ** NOT SANE (observed > no-LB replay) **"
        lines.append(
            f"  LB step {s['step']}{strategy} before iter {s['iteration']}: "
            f"{len(s['migrations'])} migrations, recovered "
            f"{s['recovered_s']:.6f}/{s['recoverable_s']:.6f} core-s ({eff})"
            f"{sane}"
        )
        for m in s["migrations"]:
            reason = f" ({m['reason']})" if m.get("reason") else ""
            lines.append(
                f"      {m['chare']:<18} core {m['src']} -> {m['dst']}{reason}"
            )
    if run["efficiency"] is not None:
        lines.append(
            f"  run: recovered {run['recovered_s']:.6f} of "
            f"{run['recoverable_s']:.6f} recoverable core-s "
            f"({100.0 * run['efficiency']:.0f}%)"
        )
    hot = run.get("residual_hotspot")
    if hot is not None:
        chares = ", ".join(
            f"{c['chare']} ({c['cpu_s']:.6f}s)" for c in hot["chares"]
        )
        lines.append(
            f"  residual hotspot: core {hot['core']} carries "
            f"{100.0 * hot['share']:.1f}% of the closing load"
            + (f" — {chares}" if chares else "")
        )
    return "\n".join(lines)


def lineage_dot(payload: Mapping[str, Any]) -> str:
    """The migration flow as a GraphViz digraph (cores as nodes).

    Edge weight = number of chares moved along that (src → dst) pair
    across all LB steps; node label carries the core's closing load
    share so the flow reads against where load ended up.
    """
    flows: Dict[Tuple[int, int], int] = {}
    for step in payload["steps"]:
        for m in step["migrations"]:
            pair = (m["src"], m["dst"])
            flows[pair] = flows.get(pair, 0) + 1
    last = payload["per_iteration"][-1] if payload["per_iteration"] else None
    lines = ["digraph lineage {", "  rankdir=LR;", "  node [shape=box];"]
    for cid in payload["cores"]:
        share = last["shares"][str(cid)] if last is not None else 0.0
        lines.append(
            f'  c{cid} [label="core {cid}\\n{100.0 * share:.1f}%"];'
        )
    for (src, dst), count in sorted(flows.items()):
        lines.append(
            f'  c{src} -> c{dst} [label="{count}", penwidth={1 + count}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"

"""``repro report``: a self-contained HTML observability dashboard.

One static file — inline CSS, inline SVG sparklines, **zero external
JavaScript or assets** — summarising everything the registry and the
perf trajectory know:

* headline stat tiles (runs registered, points simulated, current SHA);
* paper-figure validation: for the latest run of each sweep, every
  matched (noLB, LB) interfered pair and whether the Fig. 2 directional
  claim held;
* the run table (``repro runs list`` in HTML);
* time attribution for runs recorded with ``sweep --ledger``: one
  stacked compute/stolen/overhead/idle bar per point, with its
  conservation verdict (see :mod:`repro.obs.ledger`);
* fabric health for distributed runs: a track-per-worker timeline strip
  of shard attempts (steals and faults colored), utilization bars, and
  steal/respawn/death counters from each run's ``fabric`` block;
* load imbalance for runs recorded with ``sweep --lineage``: one
  per-iteration λ sparkline and one Sankey-style migration-flow strip
  per point, with the run's counterfactual LB efficiency
  (see :mod:`repro.obs.lineage`);
* bench trajectory trends as per-metric sparklines;
* anomaly findings from :mod:`repro.obs.anomaly`, worst first.

Self-containment is the deployment story: CI uploads the single file as
an artifact and it renders anywhere — no server, no CDN, no build step.
Colors follow the project dataviz conventions: one series hue for data
marks, reserved status colors that always ship with a text label (never
color alone), and a ``prefers-color-scheme`` dark mode re-stepped from
the same hues rather than inverted.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.anomaly import (
    DEFAULT_THRESHOLDS,
    Finding,
    Thresholds,
    _lb_pairs,
    check_bench_trajectory,
    check_run,
)
from repro.obs.registry import RunRegistry

__all__ = ["build_report", "render_report", "write_report"]

# Light/dark surfaces and the series hue come from the project palette;
# status colors are the reserved set and are always paired with a label.
_CSS = """
:root {
  --surface: #fcfcfb; --ink: #1f1f1e; --ink-2: #5c5c58; --line: #e4e4e0;
  --series: #2a78d6; --good: #0ca30c; --warning: #b97f00; --error: #d03b3b;
  --tile: #f3f3f0;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ececea; --ink-2: #a3a39e; --line: #353532;
    --series: #3987e5; --good: #2dc22d; --warning: #fab219; --error: #e06c6c;
    --tile: #242423;
  }
}
html { background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif; }
body { max-width: 64rem; margin: 2rem auto; padding: 0 1rem; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
  border-bottom: 1px solid var(--line);
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
.num { text-align: right; }
.tiles { display: flex; gap: 0.8rem; flex-wrap: wrap; margin: 1rem 0; }
.tile { background: var(--tile); border-radius: 6px; padding: 0.6rem 1rem; }
.tile .v { font-size: 1.4rem; font-weight: 700;
  font-variant-numeric: tabular-nums; }
.tile .k { color: var(--ink-2); font-size: 0.8rem; }
.sev-error { color: var(--error); font-weight: 600; }
.sev-warning { color: var(--warning); font-weight: 600; }
.sev-info, .muted { color: var(--ink-2); }
.ok { color: var(--good); font-weight: 600; }
code { background: var(--tile); padding: 0 0.25rem; border-radius: 3px; }
.spark { vertical-align: middle; }
footer { margin-top: 2.5rem; color: var(--ink-2); font-size: 0.8rem; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _sparkline_svg(
    values: Sequence[float], *, width: int = 120, height: int = 28
) -> str:
    """Inline single-series SVG sparkline (no legend needed for one
    series; the row label names it)."""
    if len(values) < 2:
        return '<span class="muted">n/a</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 3.0
    n = len(values)
    pts = []
    for i, v in enumerate(values):
        x = pad + i * (width - 2 * pad) / (n - 1)
        y = height - pad - (v - lo) / span * (height - 2 * pad)
        pts.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = pts[-1].split(",")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend of {n} values">'
        f'<polyline fill="none" stroke="var(--series)" stroke-width="2" '
        f'stroke-linecap="round" points="{" ".join(pts)}"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="3" fill="var(--series)"/>'
        f"</svg>"
    )


#: Attempt-outcome fill colors for the fabric timeline strip. Outcome is
#: also in each rect's <title>, so color never carries meaning alone.
_OUTCOME_FILL = {
    "done": "var(--series)",
    "duplicate": "var(--ink-2)",
    "stolen": "var(--warning)",
    "killed": "var(--error)",
    "hung": "var(--error)",
    "lost": "var(--error)",
    "running": "var(--warning)",
}


def _fabric_strip_svg(
    fabric: Mapping[str, Any], *, width: int = 560, row_h: int = 18
) -> str:
    """Track-per-worker timeline strip of shard attempts (inline SVG)."""
    attempts = [
        a
        for a in fabric.get("attempts", ())
        if isinstance(a.get("t0"), (int, float))
    ]
    workers = sorted(
        {str(a.get("worker")) for a in attempts}
        | {str(w) for w in fabric.get("workers_seen", ())}
    )
    if not attempts or not workers:
        return '<span class="muted">no attempt spans recorded</span>'
    t0_min = min(float(a["t0"]) for a in attempts)
    t_end = max(
        float(a["t1"]) if isinstance(a.get("t1"), (int, float)) else float(a["t0"])
        for a in attempts
    )
    span = max(t_end - t0_min, 1e-9)
    label_w, pad = 52, 4
    height = row_h * len(workers) + pad
    lane_w = width - label_w - pad

    def x(t: float) -> float:
        return label_w + (t - t0_min) / span * lane_w

    parts = [
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="shard attempts per worker over {span:.3f}s">'
    ]
    for i, worker in enumerate(workers):
        y = pad / 2 + i * row_h
        mid = y + row_h / 2
        parts.append(
            f'<text x="2" y="{mid + 4:.1f}" font-size="11" '
            f'fill="var(--ink-2)">{_esc(worker)}</text>'
        )
        parts.append(
            f'<line x1="{label_w}" y1="{mid:.1f}" x2="{width - pad}" '
            f'y2="{mid:.1f}" stroke="var(--line)" stroke-width="1"/>'
        )
    for a in attempts:
        worker = str(a.get("worker"))
        i = workers.index(worker)
        y = pad / 2 + i * row_h + 2
        t0 = float(a["t0"])
        t1 = float(a["t1"]) if isinstance(a.get("t1"), (int, float)) else t0
        outcome = str(a.get("outcome", "?"))
        fill = _OUTCOME_FILL.get(outcome, "var(--ink-2)")
        x0, x1 = x(t0), x(max(t1, t0))
        parts.append(
            f'<rect x="{x0:.1f}" y="{y:.1f}" '
            f'width="{max(x1 - x0, 2.0):.1f}" height="{row_h - 6}" '
            f'rx="2" fill="{fill}">'
            f"<title>{_esc(a.get('shard', '?'))}: {_esc(outcome)} "
            f"on {_esc(worker)} ({t1 - t0:.3f}s)</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _fabric_utilization(fabric: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-worker busy time / busy fraction from the attempt spans."""
    attempts = [
        a
        for a in fabric.get("attempts", ())
        if isinstance(a.get("t0"), (int, float))
        and isinstance(a.get("t1"), (int, float))
    ]
    if not attempts:
        return []
    t0_min = min(float(a["t0"]) for a in attempts)
    t_end = max(float(a["t1"]) for a in attempts)
    span = max(t_end - t0_min, 1e-9)
    rows: List[Dict[str, Any]] = []
    busy: Dict[str, float] = {}
    for a in attempts:
        worker = str(a.get("worker"))
        busy[worker] = busy.get(worker, 0.0) + max(
            0.0, float(a["t1"]) - float(a["t0"])
        )
    for worker in sorted(busy):
        rows.append(
            {
                "worker": worker,
                "busy_s": busy[worker],
                "frac": min(1.0, busy[worker] / span),
            }
        )
    return rows


def _migration_flow_svg(
    steps: Sequence[Mapping[str, Any]],
    cores: Sequence[int],
    *,
    width: int = 240,
    row_h: int = 16,
) -> str:
    """Sankey-style migration-flow strip: source cores on the left,
    destination cores on the right, one band per (src, dst) flow with
    thickness scaled by migration count (count also in the <title>)."""
    flows: Dict[Any, int] = {}
    for step in steps:
        for m in step.get("migrations", ()):
            pair = (int(m["src"]), int(m["dst"]))
            flows[pair] = flows.get(pair, 0) + 1
    if not flows:
        return '<span class="muted">no migrations</span>'
    core_ids = sorted(int(c) for c in cores)
    index = {c: i for i, c in enumerate(core_ids)}
    pad, label_w = 4, 30
    height = row_h * len(core_ids) + pad
    x0, x1 = label_w, width - label_w
    mid = (x0 + x1) / 2
    max_count = max(flows.values())

    def y(core: int) -> float:
        return pad / 2 + index[core] * row_h + row_h / 2

    parts = [
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="migration flow between {len(core_ids)} cores">'
    ]
    for c in core_ids:
        parts.append(
            f'<text x="2" y="{y(c) + 4:.1f}" font-size="10" '
            f'fill="var(--ink-2)">c{c}</text>'
        )
        parts.append(
            f'<text x="{x1 + 4:.1f}" y="{y(c) + 4:.1f}" font-size="10" '
            f'fill="var(--ink-2)">c{c}</text>'
        )
    for (src, dst), count in sorted(flows.items()):
        stroke = 1.5 + 4.5 * count / max_count
        parts.append(
            f'<path d="M {x0} {y(src):.1f} C {mid:.1f} {y(src):.1f}, '
            f'{mid:.1f} {y(dst):.1f}, {x1} {y(dst):.1f}" fill="none" '
            f'stroke="var(--series)" stroke-width="{stroke:.1f}" '
            f'opacity="0.7" stroke-linecap="round">'
            f"<title>core {src} &rarr; core {dst}: {count} "
            f"migration(s)</title></path>"
        )
    parts.append("</svg>")
    return "".join(parts)


#: Ledger bucket fills. The row's <title> and the legend carry the same
#: information as text, so color never stands alone.
_BUCKET_FILL = {
    "compute": "var(--series)",
    "stolen": "var(--error)",
    "overhead": "var(--warning)",
    "idle": "var(--line)",
}


def _ledger_bar(fractions: Mapping[str, Any]) -> str:
    """One stacked compute/stolen/overhead/idle bar (CSS-width divs)."""
    parts = ['<div style="display:flex;height:12px;border-radius:4px;overflow:hidden">']
    title = ", ".join(
        f"{b} {float(fractions.get(b, 0.0)) * 100.0:.1f}%"
        for b in ("compute", "stolen", "overhead", "idle")
    )
    for bucket, fill in _BUCKET_FILL.items():
        frac = float(fractions.get(bucket, 0.0))
        if frac <= 0.0:
            continue
        parts.append(
            f'<div style="background:{fill};width:{frac * 100.0:.2f}%" '
            f'role="img" aria-label="{_esc(bucket)} {frac * 100.0:.1f}%">'
            f"<title>{_esc(title)}</title></div>"
        )
    parts.append("</div>")
    return "".join(parts)


def _sev_cell(severity: str) -> str:
    # status is icon + label, never color alone
    icons = {"error": "✖", "warning": "▲", "info": "ℹ"}
    return (
        f'<span class="sev-{_esc(severity)}">'
        f"{icons.get(severity, '•')} {_esc(severity)}</span>"
    )


# ---------------------------------------------------------------------------
# data assembly
# ---------------------------------------------------------------------------


def _load_trajectory(trajectory_dir: Optional[Union[str, Path]]) -> List[Dict[str, Any]]:
    """BENCH_*.json entries sorted oldest -> newest by ``created_utc``."""
    if trajectory_dir is None:
        return []
    root = Path(trajectory_dir)
    if not root.is_dir():
        return []
    entries: List[Dict[str, Any]] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(data, dict) and isinstance(data.get("metrics"), dict):
            entries.append(data)
    entries.sort(key=lambda e: e.get("created_utc", ""))
    return entries


def build_report(
    registry_dir: Union[str, Path],
    *,
    trajectory_dir: Optional[Union[str, Path]] = None,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> Dict[str, Any]:
    """Assemble everything the dashboard renders into one plain dict.

    Separated from :func:`render_report` so tests (and future JSON
    output) can assert on the data without parsing HTML.
    """
    registry = RunRegistry(registry_dir)
    index = registry.list()

    # latest full record per sweep name, plus per-run findings
    latest_by_name: Dict[str, Dict[str, Any]] = {}
    findings: List[Finding] = []
    total_points = 0
    for line in index:
        total_points += int(line.get("points", 0) or 0)
        if line.get("kind") != "sweep":
            continue
        try:
            record = registry.load(line["run_id"])
        except (ValueError, OSError):
            continue
        latest_by_name[record["name"]] = record
    for record in latest_by_name.values():
        history = registry.history(
            record["name"], before=record["run_id"]
        )
        findings.extend(check_run(record, history, thresholds))

    # figure validation: interfered LB-vs-noLB pairs of each latest run
    figure_rows: List[Dict[str, Any]] = []
    for name, record in sorted(latest_by_name.items()):
        for pair in _lb_pairs(record):
            if not pair["nolb"]["params"].get("bg"):
                continue
            t_nolb = float(pair["nolb"]["summary"]["app_time"])
            t_lb = float(pair["lb"]["summary"]["app_time"])
            figure_rows.append(
                {
                    "sweep": name,
                    "run_id": record["run_id"],
                    "label": pair["lb"]["label"],
                    "nolb_s": t_nolb,
                    "lb_s": t_lb,
                    "holds": t_lb <= t_nolb,
                }
            )

    # fabric health blocks of the latest distributed runs
    fabric_rows: List[Dict[str, Any]] = []
    for name, record in sorted(latest_by_name.items()):
        block = record.get("fabric")
        if isinstance(block, Mapping):
            fabric_rows.append(
                {"sweep": name, "run_id": record["run_id"], "fabric": block}
            )

    # time-attribution ledgers of the latest run of each sweep
    ledger_rows: List[Dict[str, Any]] = []
    for name, record in sorted(latest_by_name.items()):
        for point in record.get("points", ()):
            ledger = point.get("ledger")
            if not isinstance(ledger, Mapping):
                continue
            ledger_rows.append(
                {
                    "sweep": name,
                    "run_id": record["run_id"],
                    "label": point.get("label", "?"),
                    "wall_s": ledger.get("wall_s"),
                    "conserved": bool(ledger.get("conserved")),
                    "fractions": dict(ledger.get("fractions", {})),
                }
            )

    # load imbalance of the latest run of each sweep
    lineage_rows: List[Dict[str, Any]] = []
    for name, record in sorted(latest_by_name.items()):
        for point in record.get("points", ()):
            lineage = point.get("lineage")
            if not isinstance(lineage, Mapping):
                continue
            run = lineage.get("run", {})
            lineage_rows.append(
                {
                    "sweep": name,
                    "run_id": record["run_id"],
                    "label": point.get("label", "?"),
                    "lambdas": [
                        float(row["lambda"])
                        for row in lineage.get("per_iteration", ())
                    ],
                    "steps": list(lineage.get("steps", ())),
                    "cores": list(lineage.get("cores", ())),
                    "migrations": run.get("migrations", 0),
                    "efficiency": run.get("efficiency"),
                    "sane": bool(run.get("sane", True)),
                }
            )

    trajectory = _load_trajectory(trajectory_dir)
    findings.extend(check_bench_trajectory(trajectory, thresholds))

    # per-metric median series for the sparklines
    trends: Dict[str, Dict[str, Any]] = {}
    for entry in trajectory:
        for metric, m in entry.get("metrics", {}).items():
            median = m.get("median")
            if not isinstance(median, (int, float)):
                continue
            slot = trends.setdefault(
                metric,
                {"unit": m.get("unit", ""), "direction": m.get("direction", ""),
                 "values": []},
            )
            slot["values"].append(float(median))

    git_shas = [line.get("git_sha", "") for line in index]
    return {
        "runs": index,
        "total_points": total_points,
        "latest_sha": git_shas[-1] if git_shas else "unknown",
        "figure_rows": figure_rows,
        "fabric_rows": fabric_rows,
        "ledger_rows": ledger_rows,
        "lineage_rows": lineage_rows,
        "trends": trends,
        "trajectory_entries": len(trajectory),
        "findings": [f.to_dict() for f in findings],
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_report(data: Mapping[str, Any]) -> str:
    """The dashboard dict -> one self-contained HTML document."""
    runs: Sequence[Mapping[str, Any]] = data.get("runs", ())
    findings: Sequence[Mapping[str, Any]] = data.get("findings", ())
    figure_rows: Sequence[Mapping[str, Any]] = data.get("figure_rows", ())
    fabric_rows: Sequence[Mapping[str, Any]] = data.get("fabric_rows", ())
    ledger_rows: Sequence[Mapping[str, Any]] = data.get("ledger_rows", ())
    lineage_rows: Sequence[Mapping[str, Any]] = data.get("lineage_rows", ())
    trends: Mapping[str, Mapping[str, Any]] = data.get("trends", {})
    errors = sum(1 for f in findings if f.get("severity") == "error")
    warnings = sum(1 for f in findings if f.get("severity") == "warning")

    out: List[str] = []
    out.append("<!DOCTYPE html>")
    out.append('<html lang="en"><head><meta charset="utf-8">')
    out.append("<title>repro observability report</title>")
    out.append(f"<style>{_CSS}</style></head><body>")
    out.append("<h1>repro observability report</h1>")
    out.append(
        '<p class="muted">Cross-run registry, paper-figure validation, '
        "bench trajectory and anomaly findings — one static page, "
        "no external assets.</p>"
    )

    # stat tiles
    out.append('<div class="tiles">')
    for value, label in (
        (len(runs), "runs registered"),
        (data.get("total_points", 0), "points recorded"),
        (data.get("trajectory_entries", 0), "bench entries"),
        (f"{errors} / {warnings}", "errors / warnings"),
        (str(data.get("latest_sha", "unknown"))[:12], "latest git sha"),
    ):
        out.append(
            f'<div class="tile"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(label)}</div></div>'
        )
    out.append("</div>")

    # paper-figure validation
    out.append("<h2>Paper-figure validation (Fig. 2 directional claim)</h2>")
    if figure_rows:
        out.append(
            "<table><thead><tr><th>sweep</th><th>point</th>"
            '<th class="num">noLB app_time (s)</th>'
            '<th class="num">LB app_time (s)</th>'
            "<th>LB &le; noLB</th></tr></thead><tbody>"
        )
        for row in figure_rows:
            status = (
                '<span class="ok">✓ holds</span>'
                if row["holds"]
                else '<span class="sev-warning">▲ violated</span>'
            )
            out.append(
                f"<tr><td>{_esc(row['sweep'])}</td>"
                f"<td><code>{_esc(row['label'])}</code></td>"
                f'<td class="num">{row["nolb_s"]:.6f}</td>'
                f'<td class="num">{row["lb_s"]:.6f}</td>'
                f"<td>{status}</td></tr>"
            )
        out.append("</tbody></table>")
    else:
        out.append(
            '<p class="muted">No interfered LB/noLB pairs in the latest '
            "registered runs.</p>"
        )

    # time attribution
    out.append("<h2>Time attribution (sweep --ledger)</h2>")
    if ledger_rows:
        out.append(
            '<p class="muted">Every core-second of every point, '
            "attributed: compute / stolen / overhead / idle "
            "(conservation is bit-exact — <code>repro explain</code> "
            "shows the per-core waterfall).</p>"
        )
        out.append(
            "<table><thead><tr><th>sweep</th><th>point</th>"
            '<th style="width:40%">compute / stolen / overhead / idle</th>'
            '<th class="num">wall (s)</th><th>conserved</th>'
            "</tr></thead><tbody>"
        )
        for row in ledger_rows:
            status = (
                '<span class="ok">✓ exact</span>'
                if row["conserved"]
                else '<span class="sev-error">✖ violated</span>'
            )
            wall = row.get("wall_s")
            wall_txt = f"{float(wall):.6f}" if isinstance(wall, (int, float)) else "-"
            out.append(
                f"<tr><td>{_esc(row['sweep'])}</td>"
                f"<td><code>{_esc(row['label'])}</code></td>"
                f"<td>{_ledger_bar(row.get('fractions', {}))}</td>"
                f'<td class="num">{wall_txt}</td>'
                f"<td>{status}</td></tr>"
            )
        out.append("</tbody></table>")
    else:
        out.append(
            '<p class="muted">No ledger-carrying runs registered (run '
            "<code>repro sweep --ledger</code>).</p>"
        )

    # load imbalance
    out.append("<h2>Load imbalance (sweep --lineage)</h2>")
    if lineage_rows:
        out.append(
            '<p class="muted">Per-iteration λ = max/avg load and the '
            "migration flow between cores, with each run's "
            "counterfactual LB efficiency — recovered / recoverable "
            "imbalance against the oracle fractional balance "
            "(<code>repro lineage</code> shows the per-step detail).</p>"
        )
        out.append(
            "<table><thead><tr><th>sweep</th><th>point</th>"
            "<th>λ per iteration</th><th>migration flow</th>"
            '<th class="num">migrations</th>'
            '<th class="num">LB efficiency</th><th>sane</th>'
            "</tr></thead><tbody>"
        )
        for row in lineage_rows:
            efficiency = row.get("efficiency")
            eff_txt = (
                f"{float(efficiency) * 100.0:.0f}%"
                if isinstance(efficiency, (int, float))
                else "-"
            )
            status = (
                '<span class="ok">✓ sane</span>'
                if row.get("sane", True)
                else '<span class="sev-warning">▲ not sane</span>'
            )
            out.append(
                f"<tr><td>{_esc(row['sweep'])}</td>"
                f"<td><code>{_esc(row['label'])}</code></td>"
                f"<td>{_sparkline_svg(row.get('lambdas', []))}</td>"
                f"<td>{_migration_flow_svg(row.get('steps', ()), row.get('cores', ()))}</td>"
                f'<td class="num">{_esc(row.get("migrations", 0))}</td>'
                f'<td class="num">{_esc(eff_txt)}</td>'
                f"<td>{status}</td></tr>"
            )
        out.append("</tbody></table>")
    else:
        out.append(
            '<p class="muted">No lineage-carrying runs registered (run '
            "<code>repro sweep --lineage</code>).</p>"
        )

    # run table
    out.append("<h2>Registered runs</h2>")
    if runs:
        out.append(
            "<table><thead><tr><th>run id</th><th>kind</th><th>name</th>"
            '<th>created (UTC)</th><th>git sha</th><th class="num">points'
            "</th></tr></thead><tbody>"
        )
        for line in runs:
            out.append(
                f"<tr><td><code>{_esc(line.get('run_id', '?'))}</code></td>"
                f"<td>{_esc(line.get('kind', '?'))}</td>"
                f"<td>{_esc(line.get('name', '?'))}</td>"
                f"<td>{_esc(line.get('created_utc', ''))}</td>"
                f"<td><code>{_esc(str(line.get('git_sha', ''))[:12])}</code></td>"
                f'<td class="num">{_esc(line.get("points", 0))}</td></tr>'
            )
        out.append("</tbody></table>")
    else:
        out.append('<p class="muted">The registry is empty.</p>')

    # fabric health
    out.append("<h2>Fabric health (distributed runs)</h2>")
    if fabric_rows:
        for row in fabric_rows:
            fabric = row["fabric"]
            out.append(
                f"<h3>{_esc(row['sweep'])} "
                f"<code>{_esc(row['run_id'])}</code></h3>"
            )
            seen = fabric.get("workers_seen") or ()
            n_workers = len(seen) if seen else fabric.get("workers", "?")
            out.append(
                f'<p class="muted">{_esc(n_workers)} worker(s), '
                f"{_esc(fabric.get('shards', '?'))} shard(s) &middot; "
                f"steals {_esc(fabric.get('steals', 0))} &middot; "
                f"respawns {_esc(fabric.get('respawns', 0))}"
                f"/{_esc(fabric.get('max_respawns', 0))} &middot; "
                f"worker deaths {_esc(fabric.get('worker_deaths', 0))} "
                f"&middot; <code>{_esc(fabric.get('fabric_dir', ''))}</code>"
                "</p>"
            )
            out.append(_fabric_strip_svg(fabric))
            util = _fabric_utilization(fabric)
            if util:
                out.append(
                    "<table><thead><tr><th>worker</th><th>busy</th>"
                    '<th class="num">busy time (s)</th></tr></thead><tbody>'
                )
                for u in util:
                    pct = u["frac"] * 100.0
                    out.append(
                        f"<tr><td><code>{_esc(u['worker'])}</code></td>"
                        f'<td><div style="background:var(--series);'
                        f"height:8px;border-radius:4px;"
                        f'width:{pct:.1f}%" role="img" '
                        f'aria-label="{pct:.0f}% busy"></div></td>'
                        f'<td class="num">{u["busy_s"]:.3f}</td></tr>'
                    )
                out.append("</tbody></table>")
    else:
        out.append(
            '<p class="muted">No fabric runs registered (run '
            "<code>repro fabric run</code>).</p>"
        )

    # bench trends
    out.append("<h2>Bench trajectory</h2>")
    if trends:
        out.append(
            "<table><thead><tr><th>metric</th><th>trend (oldest &rarr; "
            'newest)</th><th class="num">latest median</th><th>unit</th>'
            "</tr></thead><tbody>"
        )
        for metric in sorted(trends):
            slot = trends[metric]
            values = slot.get("values", [])
            latest = f"{values[-1]:,.1f}" if values else "-"
            out.append(
                f"<tr><td><code>{_esc(metric)}</code></td>"
                f"<td>{_sparkline_svg(values)}</td>"
                f'<td class="num">{_esc(latest)}</td>'
                f"<td>{_esc(slot.get('unit', ''))}</td></tr>"
            )
        out.append("</tbody></table>")
    else:
        out.append(
            '<p class="muted">No bench trajectory entries '
            "(run <code>repro bench --save DIR</code>).</p>"
        )

    # findings
    out.append("<h2>Anomaly findings</h2>")
    if findings:
        out.append(
            "<table><thead><tr><th>severity</th><th>rule</th>"
            "<th>subject</th><th>detail</th></tr></thead><tbody>"
        )
        for f in findings:
            out.append(
                f"<tr><td>{_sev_cell(str(f.get('severity', 'info')))}</td>"
                f"<td><code>{_esc(f.get('rule', '?'))}</code></td>"
                f"<td><code>{_esc(f.get('subject', '?'))}</code></td>"
                f"<td>{_esc(f.get('message', ''))}</td></tr>"
            )
        out.append("</tbody></table>")
    else:
        out.append('<p class="ok">✓ No anomalies detected.</p>')

    out.append(
        "<footer>Generated by <code>repro report</code> — findings are "
        "rule-based (see <code>repro.obs.anomaly</code>); "
        "<code>repro runs check</code> gates CI on error-severity "
        "findings.</footer>"
    )
    out.append("</body></html>")
    return "\n".join(out)


def write_report(
    path: Union[str, Path],
    registry_dir: Union[str, Path],
    *,
    trajectory_dir: Optional[Union[str, Path]] = None,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> Dict[str, Any]:
    """Build and write the dashboard; returns the underlying data dict."""
    data = build_report(
        registry_dir, trajectory_dir=trajectory_dir, thresholds=thresholds
    )
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_report(data))
    return data

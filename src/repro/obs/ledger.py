"""Time-attribution ledger: every simulated core-second, accounted.

The stack measures end-to-end wall time and energy but — before this
module — could not say *where* a run's time went: how much of each core's
clock was application compute, how much was stolen by proportional-share
interference, how much was the LB pause (decision + migration transfer),
and how much was barrier/communication idle. :class:`TimeLedger`
decomposes every app core's wall clock into exactly those four buckets,
per core, per iteration and per chare, under a hard **conservation
invariant**: the buckets sum *bit-exactly* to ``wall x cores``.

Exactness
---------
Bit-exact conservation of separately accumulated IEEE-754 sums is
impossible (per-bucket fold order differs from a single accumulator), so
the ledger does not accumulate floats: every simulated timestamp is a
float and therefore an exact dyadic rational, and the ledger accrues
``fractions.Fraction`` arithmetic over those exact values. Each accrued
interval contributes ``Fraction(t1) - Fraction(t0)`` split exactly among
the buckets, intervals are required to tile each core's timeline with no
gap or overlap (:class:`LedgerError` otherwise), and exact arithmetic is
associative — so conservation holds by telescoping, and the event engine
and the fast path produce **identical** ledgers even though they
subdivide the timeline differently (per scheduling change vs. per task).

Bucket semantics
----------------
``compute``
    The job's proportional-share occupancy: ``dt * w_app / w_total``
    over every interval where one of its tasks is runnable.
``stolen``
    The complement on those same intervals — wall time the co-runners'
    shares took from the job (zero when the job runs alone).
``overhead``
    Wall time inside an LB pause window (decision overhead + migration
    transfer) with no app task runnable.
``idle``
    Everything else: barrier wait, communication gaps, pre-launch time,
    and background-only stretches.

The ledger additionally tracks how much of ``overhead``/``idle`` wall
time the core was *busy* with other jobs — the split the energy
decomposition (:func:`repro.power.meter.decompose_energy`) attributes
dynamic joules by.

The null-hook doctrine applies: backends carry a ``ledger`` attribute
that defaults to ``None`` and is checked once per accrual; with no
ledger attached nothing is computed and summaries are byte-identical to
ledger-free builds.
"""

from __future__ import annotations

import bisect
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LEDGER_SCHEMA",
    "BUCKETS",
    "LedgerError",
    "TimeLedger",
    "format_ledger_text",
]

#: Version stamp carried by every ledger summary.
LEDGER_SCHEMA = 1

#: Bucket names, in reporting order.
BUCKETS = ("compute", "stolen", "overhead", "idle")

_COMPUTE, _STOLEN, _OVERHEAD, _IDLE = range(4)

ChareKey = Tuple[str, int]

_ZERO = Fraction(0)


class LedgerError(RuntimeError):
    """A ledger invariant was violated (gap, overlap, or misuse)."""


class TimeLedger:
    """Exact per-core/per-iteration/per-chare wall-clock attribution.

    Parameters
    ----------
    job:
        Owner tag of the attributed job (processes with this owner are
        "app"; everything else is a co-runner).
    core_ids:
        The job's cores — the only cores the ledger accounts.

    The simulation side drives four hooks:

    * :meth:`accrue` — one contiguous interval of one core's timeline
      with its (constant) runnable set;
    * :meth:`accrue_app` — fast-path special case: the job's task ``key``
      ran alone for the whole interval (pure compute);
    * :meth:`mark_iteration` / :meth:`mark_pause` — iteration begin
      times and LB pause windows (classification boundaries);
    * :meth:`close` — seal the ledger at job completion; every core
      must be accounted exactly to the closing time.
    """

    def __init__(self, job: str = "app", core_ids: Sequence[int] = ()) -> None:
        self.job = job
        self.core_ids: Tuple[int, ...] = tuple(sorted(int(c) for c in core_ids))
        if len(set(self.core_ids)) != len(self.core_ids):
            raise ValueError("core_ids contains duplicates")
        self._per_core: Dict[int, List[Fraction]] = {
            cid: [_ZERO, _ZERO, _ZERO, _ZERO] for cid in self.core_ids
        }
        self._busy_overhead: Dict[int, Fraction] = {
            cid: _ZERO for cid in self.core_ids
        }
        self._busy_idle: Dict[int, Fraction] = {cid: _ZERO for cid in self.core_ids}
        self._chares: Dict[ChareKey, List[Fraction]] = {}
        self._iters: List[List[Fraction]] = []
        self._marks: List[float] = []
        self._pauses: List[Tuple[float, float]] = []
        self._pause_edges: List[float] = []
        self._cursor: Dict[int, float] = {cid: 0.0 for cid in self.core_ids}
        self.closed_at: Optional[float] = None

    # ------------------------------------------------------------------
    # marks
    # ------------------------------------------------------------------
    def mark_iteration(self, iteration: int, t: float) -> None:
        """Record that ``iteration`` begins at simulated time ``t``."""
        if self.closed_at is not None:
            return
        if iteration != len(self._marks):
            raise LedgerError(
                f"iteration mark {iteration} out of order "
                f"(expected {len(self._marks)})"
            )
        if self._marks and t < self._marks[-1]:
            raise LedgerError("iteration marks must be non-decreasing")
        self._marks.append(t)

    def mark_pause(self, t0: float, t1: float) -> None:
        """Record an LB pause window ``[t0, t1)`` (decision + transfer)."""
        if self.closed_at is not None:
            return
        if t1 < t0:
            raise LedgerError(f"pause window ends before it starts: {t0}..{t1}")
        if self._pause_edges and t0 < self._pause_edges[-1]:
            raise LedgerError("pause windows must be ordered and disjoint")
        self._pauses.append((t0, t1))
        self._pause_edges.append(t0)
        self._pause_edges.append(t1)

    # ------------------------------------------------------------------
    # accrual
    # ------------------------------------------------------------------
    def accrue(
        self, core_id: int, t0: float, t1: float, procs: Iterable[Any]
    ) -> None:
        """Attribute ``[t0, t1)`` on ``core_id`` given its runnable set.

        ``procs`` is the core's (constant over the interval) runnable
        set; each item exposes ``owner``, ``weight`` and ``key``.
        Intervals must tile the core's timeline contiguously from 0.
        """
        if self.closed_at is not None:
            return
        if t1 <= t0:
            return
        cur = self._cursor[core_id]
        if t0 != cur:
            raise LedgerError(
                f"core {core_id}: interval starts at {t0!r} but the core "
                f"is accounted to {cur!r} (gap or overlap)"
            )
        self._cursor[core_id] = t1

        total_w = _ZERO
        app_procs: List[Tuple[ChareKey, Fraction]] = []
        has_procs = False
        for p in procs:
            has_procs = True
            w = Fraction(p.weight)
            total_w += w
            if p.owner == self.job:
                app_procs.append((p.key, w))
        app_w = _ZERO
        for _, w in app_procs:
            app_w += w

        per_core = self._per_core[core_id]
        chares = self._chares
        prev = t0
        for c in self._cuts(t0, t1):
            if c <= prev:
                continue
            self._segment(
                core_id, per_core, chares, prev, c,
                app_procs, app_w, total_w, has_procs,
            )
            prev = c
        if prev < t1:
            self._segment(
                core_id, per_core, chares, prev, t1,
                app_procs, app_w, total_w, has_procs,
            )

    def accrue_app(
        self, core_id: int, t0: float, t1: float, key: ChareKey
    ) -> None:
        """Attribute ``[t0, t1)`` as pure compute of chare ``key``.

        Fast-path special case for a solo-running app task: the whole
        interval is compute (share ``w/w == 1``), so no weight split is
        needed — only iteration segmentation.
        """
        if self.closed_at is not None:
            return
        if t1 <= t0:
            return
        cur = self._cursor[core_id]
        if t0 != cur:
            raise LedgerError(
                f"core {core_id}: interval starts at {t0!r} but the core "
                f"is accounted to {cur!r} (gap or overlap)"
            )
        self._cursor[core_id] = t1
        per_core = self._per_core[core_id]
        entry = self._chares.get(key)
        if entry is None:
            entry = self._chares[key] = [_ZERO, _ZERO]
        marks = self._marks
        prev = t0
        i = bisect.bisect_right(marks, t0)
        while i < len(marks) and marks[i] < t1:
            c = marks[i]
            i += 1
            if c <= prev:
                continue
            dt = Fraction(c) - Fraction(prev)
            per_core[_COMPUTE] += dt
            entry[0] += dt
            self._iter_bucket(prev)[_COMPUTE] += dt
            prev = c
        dt = Fraction(t1) - Fraction(prev)
        per_core[_COMPUTE] += dt
        entry[0] += dt
        self._iter_bucket(prev)[_COMPUTE] += dt

    # -- internals ------------------------------------------------------
    def _cuts(self, t0: float, t1: float) -> List[float]:
        """Classification boundaries strictly inside ``(t0, t1)``."""
        cuts: List[float] = []
        marks = self._marks
        i = bisect.bisect_right(marks, t0)
        while i < len(marks) and marks[i] < t1:
            cuts.append(marks[i])
            i += 1
        edges = self._pause_edges
        i = bisect.bisect_right(edges, t0)
        while i < len(edges) and edges[i] < t1:
            cuts.append(edges[i])
            i += 1
        cuts.sort()
        return cuts

    def _iter_bucket(self, t: float) -> List[Fraction]:
        idx = bisect.bisect_right(self._marks, t) - 1
        if idx < 0:
            idx = 0
        iters = self._iters
        while len(iters) <= idx:
            iters.append([_ZERO, _ZERO, _ZERO, _ZERO])
        return iters[idx]

    def _in_pause(self, t: float) -> bool:
        starts = self._pause_edges[::2]
        j = bisect.bisect_right(starts, t) - 1
        return j >= 0 and t < self._pauses[j][1]

    def _segment(
        self,
        core_id: int,
        per_core: List[Fraction],
        chares: Dict[ChareKey, List[Fraction]],
        s0: float,
        s1: float,
        app_procs: List[Tuple[ChareKey, Fraction]],
        app_w: Fraction,
        total_w: Fraction,
        has_procs: bool,
    ) -> None:
        dt = Fraction(s1) - Fraction(s0)
        it = self._iter_bucket(s0)
        if app_procs:
            comp = dt * app_w / total_w
            stol = dt - comp
            per_core[_COMPUTE] += comp
            per_core[_STOLEN] += stol
            it[_COMPUTE] += comp
            it[_STOLEN] += stol
            for key, w in app_procs:
                entry = chares.get(key)
                if entry is None:
                    entry = chares[key] = [_ZERO, _ZERO]
                c_p = dt * w / total_w
                entry[0] += c_p
                entry[1] += dt * w / app_w - c_p
        else:
            bucket = _OVERHEAD if self._in_pause(s0) else _IDLE
            per_core[bucket] += dt
            it[bucket] += dt
            if has_procs:
                if bucket == _OVERHEAD:
                    self._busy_overhead[core_id] += dt
                else:
                    self._busy_idle[core_id] += dt

    # ------------------------------------------------------------------
    # closing / invariants
    # ------------------------------------------------------------------
    def close(self, t_end: float) -> None:
        """Seal the ledger at job completion time ``t_end``.

        Every core must be accounted exactly to ``t_end`` (the caller
        syncs its cores first); later accruals become no-ops.
        """
        if self.closed_at is not None:
            raise LedgerError("ledger already closed")
        for cid in self.core_ids:
            cur = self._cursor[cid]
            if cur != t_end and t_end > 0.0:
                raise LedgerError(
                    f"core {cid} accounted to {cur!r}, not the closing "
                    f"time {t_end!r} — sync the core before close()"
                )
        self.closed_at = t_end

    @property
    def closed(self) -> bool:
        return self.closed_at is not None

    def totals_exact(self) -> Dict[str, Fraction]:
        """Exact bucket totals summed over every core."""
        out = {b: _ZERO for b in BUCKETS}
        for buckets in self._per_core.values():
            for i, b in enumerate(BUCKETS):
                out[b] += buckets[i]
        return out

    def busy_exact(self) -> Dict[str, Fraction]:
        """Exact *busy* core-seconds by bucket.

        Compute and stolen wall time is busy by definition; overhead and
        idle wall time counts only the sub-intervals where co-runners
        kept the core busy. This is the partition the energy
        decomposition splits dynamic joules by.
        """
        totals = self.totals_exact()
        return {
            "compute": totals["compute"],
            "stolen": totals["stolen"],
            "overhead": sum(self._busy_overhead.values(), _ZERO),
            "idle": sum(self._busy_idle.values(), _ZERO),
        }

    def residual_exact(self) -> Fraction:
        """``sum(buckets) - wall x cores`` — zero iff conserved."""
        if self.closed_at is None:
            raise LedgerError("ledger still open — close() it first")
        total = _ZERO
        for v in self.totals_exact().values():
            total += v
        return total - Fraction(self.closed_at) * len(self.core_ids)

    @property
    def conserved(self) -> bool:
        return self.residual_exact() == 0

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-safe reduction (floats derived from the exact values).

        Deterministic: keys sorted, so two identical runs — and the two
        backends — serialise byte-identically.
        """
        if self.closed_at is None:
            raise LedgerError("ledger still open — close() it first")
        wall = self.closed_at
        totals = self.totals_exact()
        busy = self.busy_exact()
        denom = Fraction(wall) * len(self.core_ids)
        residual = self.residual_exact()
        per_iteration = []
        for i, start in enumerate(self._marks):
            buckets = (
                self._iters[i] if i < len(self._iters)
                else [_ZERO, _ZERO, _ZERO, _ZERO]
            )
            row = {"iteration": i, "start_s": start}
            for j, b in enumerate(BUCKETS):
                row[b] = float(buckets[j])
            per_iteration.append(row)
        chares = {}
        for key in sorted(self._chares):
            comp, stol = self._chares[key]
            chares[f"{key[0]}[{key[1]}]"] = {
                "compute": float(comp),
                "stolen": float(stol),
            }
        return {
            "schema": LEDGER_SCHEMA,
            "job": self.job,
            "wall_s": wall,
            "cores": list(self.core_ids),
            "conserved": residual == 0,
            "residual_s": float(residual),
            "totals": {b: float(totals[b]) for b in BUCKETS},
            "fractions": {
                b: (float(totals[b] / denom) if denom else 0.0) for b in BUCKETS
            },
            "busy": {b: float(busy[b]) for b in BUCKETS},
            "per_core": {
                str(cid): {
                    b: float(self._per_core[cid][j])
                    for j, b in enumerate(BUCKETS)
                }
                for cid in self.core_ids
            },
            "per_iteration": per_iteration,
            "chares": chares,
        }


# ---------------------------------------------------------------------------
# rendering (the `repro explain` waterfall)
# ---------------------------------------------------------------------------

#: One glyph per bucket for the per-core strips.
_GLYPHS = {"compute": "#", "stolen": "x", "overhead": "o", "idle": "."}


def _strip(shares: Dict[str, float], width: int) -> str:
    """A fixed-width textual stacked bar from bucket shares (sum ~ 1)."""
    cells: List[str] = []
    assigned = 0
    for i, b in enumerate(BUCKETS):
        n = (
            width - assigned
            if i == len(BUCKETS) - 1
            else int(round(shares.get(b, 0.0) * width))
        )
        n = max(0, min(n, width - assigned))
        cells.append(_GLYPHS[b] * n)
        assigned += n
    return "".join(cells)


def format_ledger_text(
    summary: Dict[str, Any],
    *,
    label: Optional[str] = None,
    energy: Optional[Dict[str, Any]] = None,
    top: int = 8,
    width: int = 44,
) -> str:
    """Human-readable waterfall of one ledger summary.

    ``energy`` is an optional :func:`repro.power.meter.decompose_energy`
    dict rendered as a closing line; ``top`` bounds the chare table.
    """
    wall = summary["wall_s"]
    cores = summary["cores"]
    totals = summary["totals"]
    fractions = summary["fractions"]
    status = "conserved" if summary["conserved"] else (
        f"NOT CONSERVED (residual {summary['residual_s']:+.3e}s)"
    )
    lines = []
    head = f"wall {wall:.6f}s x {len(cores)} cores = " \
           f"{wall * len(cores):.6f} core-s [{status}]"
    lines.append(f"{label}: {head}" if label else head)
    for b in BUCKETS:
        share = fractions[b]
        bar = _GLYPHS[b] * max(1 if totals[b] > 0 else 0, int(round(share * width)))
        lines.append(
            f"  {b:<9} {totals[b]:>12.6f} core-s  {100.0 * share:5.1f}%  {bar}"
        )
    lines.append("  per-core waterfall (# compute, x stolen, o overhead, . idle):")
    for cid in cores:
        row = summary["per_core"][str(cid)]
        denom = wall if wall > 0 else 1.0
        shares = {b: row[b] / denom for b in BUCKETS}
        lines.append(f"    core {cid:>3} |{_strip(shares, width)}|")
    chares = summary.get("chares", {})
    if chares and top > 0:
        ranked = sorted(
            chares.items(),
            key=lambda kv: -(kv[1]["compute"] + kv[1]["stolen"]),
        )[:top]
        lines.append(f"  top {len(ranked)} chares by attributed time:")
        for name, row in ranked:
            lines.append(
                f"    {name:<20} compute {row['compute']:>10.6f}s  "
                f"stolen {row['stolen']:>10.6f}s"
            )
    if energy is not None:
        buckets = energy.get("dynamic_by_bucket") or {}
        split = ", ".join(
            f"{b} {buckets[b]:.3f}" for b in BUCKETS if b in buckets
        )
        lines.append(
            f"  energy: {energy['energy_j']:.3f} J = base {energy['base_j']:.3f} J"
            f" + dynamic {energy['dynamic_j']:.3f} J"
            + (f" ({split})" if split else "")
        )
    return "\n".join(lines)

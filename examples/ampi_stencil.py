#!/usr/bin/env python
"""An MPI-style program on migratable ranks (the AMPI route).

The paper: "Existing MPI applications can leverage the benefits of our
approach using Adaptive MPI (AMPI)". Here a 1D stencil written in an
mpi4py-flavoured style — ranks exchange halo messages with neighbours
and allreduce a residual — runs with 32 virtual ranks on 4 cores. An
interfering job appears mid-run; because ranks are migratable objects,
the same Algorithm 1 balancer drains them off the interfered core.

Run:  python examples/ampi_stencil.py
"""

from repro.ampi import AmpiComm, AmpiProgram
from repro.cluster import Cluster, Interferer
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.sim import SimulationEngine

NUM_RANKS = 32
WORK_PER_STEP = 0.002  # CPU-seconds per rank per superstep
residual_log = []


def compute(comm: AmpiComm, it: int) -> float:
    """One superstep: halo exchange + residual allreduce + local sweep."""
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    comm.recv(left)          # halo from the previous superstep
    comm.recv(right)
    comm.send(left, f"halo[{comm.rank}->{left}]@{it}")
    comm.send(right, f"halo[{comm.rank}->{right}]@{it}")
    # a synthetic residual that decays as the solve converges
    comm.allreduce(1.0 / (1 + it) * (1 + comm.rank / comm.size), op="max")
    if comm.rank == 0 and comm.reduced() is not None:
        residual_log.append(comm.reduced())
    return WORK_PER_STEP


def main() -> None:
    engine = SimulationEngine()
    cluster = Cluster(engine, num_nodes=1, cores_per_node=4)
    program = AmpiProgram(num_ranks=NUM_RANKS, compute=compute, state_bytes=32768)
    rt = program.instantiate(
        engine,
        cluster,
        [0, 1, 2, 3],
        balancer=RefineVMInterferenceLB(0.05),
        policy=LBPolicy(period_iterations=5),
    )
    # a noisy neighbour lands on core 2 partway through the solve
    hog = Interferer(engine, cluster.core(2), start=None)
    rt.on_iteration(lambda r, it: hog.activate() if it == 19 else None)
    rt.start(iterations=60)
    engine.run()

    times = rt.stats.iteration_times
    print(f"{NUM_RANKS} AMPI ranks on 4 cores, hog on core 2 from superstep 20")
    print(f"superstep time before interference : {times[10] * 1000:7.2f} ms")
    print(f"superstep time right after arrival : {times[21] * 1000:7.2f} ms")
    print(f"superstep time after rebalancing   : {times[-2] * 1000:7.2f} ms")
    ranks_on_core2 = sum(1 for c in rt.mapping.values() if c == 2)
    print(f"ranks left on the interfered core  : {ranks_on_core2} (started with 8)")
    print(f"object migrations performed        : {rt.migration_count}")
    print(f"final residual (allreduce max)     : {residual_log[-1]:.4f}")


if __name__ == "__main__":
    main()

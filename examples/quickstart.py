#!/usr/bin/env python
"""Quickstart: interference hurts; interference-aware balancing recovers.

Runs the same Jacobi2D application three times on 16 simulated cores of
the paper's testbed (four 4-core nodes), prints a comparison table:

1. alone (the baseline);
2. with a 2-core background job sharing cores 0-1, no load balancing;
3. the same with the paper's Algorithm 1 balancer.

Run:  python examples/quickstart.py
"""

from repro.apps import Jacobi2D, Wave2D
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.experiments import (
    BackgroundSpec,
    Scenario,
    format_table,
    percent_increase,
    run_scenario,
)


def main() -> None:
    app = Jacobi2D(grid_size=4096)  # ~16.8M cells, 8 chares per core
    bg_job = BackgroundSpec(
        model=Wave2D.background(grid_size=1024),  # the interfering tenant
        core_ids=(0, 1),
        iterations=400,
    )

    base = run_scenario(Scenario(app=app, num_cores=16, iterations=100))
    nolb = run_scenario(
        Scenario(app=app, num_cores=16, iterations=100, bg=bg_job)
    )
    lb = run_scenario(
        Scenario(
            app=app,
            num_cores=16,
            iterations=100,
            bg=bg_job,
            balancer=RefineVMInterferenceLB(epsilon=0.05),
            policy=LBPolicy(period_iterations=5),
        )
    )

    rows = [
        ("alone (base)", base.app_time, 0.0, base.avg_power_w, base.energy.energy_j),
        (
            "interfered, noLB",
            nolb.app_time,
            percent_increase(nolb.app_time, base.app_time),
            nolb.avg_power_w,
            nolb.energy.energy_j,
        ),
        (
            "interfered, LB",
            lb.app_time,
            percent_increase(lb.app_time, base.app_time),
            lb.avg_power_w,
            lb.energy.energy_j,
        ),
    ]
    print(
        format_table(
            ["run", "time (s)", "penalty %", "avg power W", "energy J"],
            rows,
            title="Jacobi2D on 16 cores, 2-core Wave2D interfering on cores 0-1",
            float_fmt="{:.2f}",
        )
    )
    print()
    print(
        f"Load balancing performed {lb.app.total_migrations} object "
        f"migrations over {lb.app.lb_steps} LB steps and cut the timing "
        f"penalty by "
        f"{100 * (1 - (lb.app_time - base.app_time) / (nolb.app_time - base.app_time)):.0f}%."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Locality extensions: where migrated objects land matters.

The paper's §VI worries about exactly this scenario: "due to the
inferior performance of network" in clouds, migrating objects is not
free. This script runs the paper's interference setup on a *virtualised*
network with a per-chare halo graph, so communication cost depends on
object placement. The finding it demonstrates:

* plain Algorithm 1 — locality-blind — sheds the right CPU load but
  scatters halo-coupled strips across cores, and the extra wire traffic
  plus migration cost can make it *slower than not balancing at all*;
* the **communication-aware receiver** variant makes the identical
  migration decisions but lands each strip next to its halo partner,
  recovering the win;
* the **node-local receiver** variant cuts migration cost (shared-memory
  transfers) but not iteration communication — necessary, not
  sufficient, on this workload.

The script also exports a Chrome/Perfetto trace of the comm-aware run
(open locality_trace.json at https://ui.perfetto.dev).

Run:  python examples/locality_study.py
"""

from repro.apps import Jacobi2D, Wave2D
from repro.cluster import NetworkModel
from repro.core import (
    CommAwareRefineLB,
    HierarchicalLB,
    LBPolicy,
    RefineVMInterferenceLB,
)
from repro.experiments import BackgroundSpec, Scenario, format_table, run_scenario
from repro.projections import write_chrome_trace


def race(balancer, label, tracing=False):
    res = run_scenario(
        Scenario(
            app=Jacobi2D(grid_size=4096, odf=8, jitter_amp=0.0),
            num_cores=8,
            iterations=100,
            balancer=balancer,
            policy=LBPolicy(period_iterations=5, decision_overhead_s=2e-4),
            bg=BackgroundSpec(
                model=Wave2D.background(grid_size=1448),
                core_ids=(0, 1),
                iterations=800,
            ),
            net=NetworkModel.virtualized(),
            use_comm_graph=True,
            tracing=tracing,
        )
    )
    return label, res


def main() -> None:
    runs = [
        race(None, "noLB"),
        race(RefineVMInterferenceLB(0.05), "Algorithm 1 (paper)"),
        race(CommAwareRefineLB(0.05), "comm-aware receivers", tracing=True),
        race(
            HierarchicalLB.by_node(4, inner=RefineVMInterferenceLB(0.05)),
            "node-local receivers",
        ),
    ]
    rows = [
        (
            label,
            res.app_time,
            res.app.total_migrations,
            res.app.total_migration_cost_s * 1000,
        )
        for label, res in runs
    ]
    print(
        format_table(
            ["strategy", "app time (s)", "migrations", "migration cost (ms)"],
            rows,
            title=(
                "Jacobi2D, 8 cores, virtualised network, per-chare halo "
                "graph, BG job on cores 0-1"
            ),
            float_fmt="{:.3f}",
        )
    )
    nolb = runs[0][1].app_time
    plain = runs[1][1].app_time
    aware = runs[2][1].app_time
    print(
        f"\nOn this cloud-like network, locality-blind balancing is "
        f"{100 * (plain / nolb - 1):+.0f}% vs. noLB — the scattered halo "
        f"edges and {runs[1][1].app.total_migration_cost_s * 1000:.0f} ms "
        f"of migrations eat the CPU-balance gain. Communication-aware "
        f"receivers turn that into {100 * (aware / nolb - 1):+.0f}% with "
        f"the same migration decisions — the paper's §VI concern, solved "
        f"by placement."
    )
    traced = next(res for label, res in runs if label == "comm-aware receivers")
    n = write_chrome_trace(traced.trace, "locality_trace.json", job_name="jacobi2d")
    print(
        f"\nWrote {n} trace events to locality_trace.json — load it in "
        "chrome://tracing or https://ui.perfetto.dev to inspect per-core "
        "task execution, LB steps and migrations."
    )


if __name__ == "__main__":
    main()

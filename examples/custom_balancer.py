#!/usr/bin/env python
"""Writing your own load balancing strategy.

Charm++ lets programmers "add their own application or platform specific
strategy to the load balancing framework"; so does this library. A
strategy is a pure function from an :class:`LBView` (instrumented task
times + Eq.-2 background loads) to a list of migrations.

This example implements *ShedWorstLB* — a deliberately simple strategy
that, at every step, moves one task from the most loaded core to the
least loaded core — and races it against NoLB and the paper's
Algorithm 1 under identical interference.

Run:  python examples/custom_balancer.py
"""

from typing import List

from repro.apps import Jacobi2D, Wave2D
from repro.core import (
    LBPolicy,
    LBView,
    LoadBalancer,
    Migration,
    NoLB,
    RefineVMInterferenceLB,
)
from repro.experiments import BackgroundSpec, Scenario, format_table, run_scenario


class ShedWorstLB(LoadBalancer):
    """Move the biggest task off the most loaded core, once per step."""

    name = "shed-worst"

    def decide(self, view: LBView) -> List[Migration]:
        if view.num_cores < 2:
            return []
        ranked = sorted(view.cores, key=lambda c: c.total_load)
        coolest, hottest = ranked[0], ranked[-1]
        if not hottest.tasks:
            return []
        biggest = max(hottest.tasks, key=lambda t: t.cpu_time)
        if hottest.total_load - biggest.cpu_time < coolest.total_load:
            return []  # the swap would just trade places
        return [
            Migration(
                chare=biggest.chare, src=hottest.core_id, dst=coolest.core_id
            )
        ]


def race(balancer, label):
    res = run_scenario(
        Scenario(
            app=Jacobi2D(grid_size=2048),
            num_cores=8,
            iterations=100,
            balancer=balancer,
            policy=LBPolicy(period_iterations=5),
            bg=BackgroundSpec(
                model=Wave2D.background(grid_size=1024),
                core_ids=(0, 1),
                iterations=400,
            ),
        )
    )
    return (label, res.app_time, res.app.total_migrations)


def main() -> None:
    rows = [
        race(None, "noLB"),
        race(ShedWorstLB(), "shed-worst (custom)"),
        race(RefineVMInterferenceLB(0.05), "Algorithm 1 (paper)"),
    ]
    print(
        format_table(
            ["strategy", "app time (s)", "migrations"],
            rows,
            title="Custom strategy vs. the paper's balancer (interfered run)",
            float_fmt="{:.3f}",
        )
    )
    print(
        "\nShedWorst helps (one migration per step is better than none) "
        "but converges far slower than Algorithm 1, which empties the "
        "overloaded heap every step."
    )


if __name__ == "__main__":
    main()

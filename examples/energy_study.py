#!/usr/bin/env python
"""Energy study: why balanced runs draw more power but less energy.

Reproduces the paper's Figure 4 argument on one Mol3D configuration and
prints a per-second power trace (what the testbed's watt meters showed)
for the no-LB and LB runs side by side, plus the integrated energy.

Run:  python examples/energy_study.py
"""

import numpy as np

from repro.apps import Mol3D, Wave2D
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.experiments import BackgroundSpec, Scenario, format_table, run_scenario
from repro.cluster.cluster import Cluster
from repro.power import PowerMeter, PowerModel
from repro.sim import SimulationEngine


def power_trace(balancer, label):
    """One interfered Mol3D run with per-sample power reconstruction."""
    engine = SimulationEngine()
    cluster = Cluster(engine, num_nodes=2, cores_per_node=4, record_intervals=True)
    app = Mol3D(total_particles=24_000).instantiate(
        engine,
        cluster,
        list(range(8)),
        balancer=balancer,
        policy=LBPolicy(period_iterations=5),
    )
    bg = Wave2D.background(grid_size=1024).instantiate(
        engine, cluster, [0, 1], name="bg", weight=4.0
    )
    meter = PowerMeter(cluster, PowerModel())
    app.start(iterations=80)
    bg.start(iterations=2000)
    engine.run(until=None)
    cluster.finalize_intervals()
    t_end = app.finished_at
    dt = max(t_end / 40, 1e-3)
    series = meter.power_series(t_end=t_end, dt=dt)
    # energy for the app's window
    energy = float(np.sum(series) * dt)
    return label, t_end, series, energy


def sparkline(series, lo=80.0, hi=340.0):
    blocks = " ▁▂▃▄▅▆▇█"
    clipped = np.clip((series - lo) / (hi - lo), 0, 1)
    return "".join(blocks[int(v * (len(blocks) - 1))] for v in clipped)


def main() -> None:
    runs = [
        power_trace(None, "noLB"),
        power_trace(RefineVMInterferenceLB(0.05), "LB"),
    ]
    print("Per-run power traces (2 nodes, 40W base / 170W peak each):\n")
    for label, t_end, series, energy in runs:
        print(f"{label:>5}: {sparkline(series)}")
        print(
            f"       time {t_end:.2f}s, mean power {series.mean():.1f}W, "
            f"energy {energy:.1f}J"
        )
    print()
    (l0, t0, s0, e0), (l1, t1, s1, e1) = runs
    rows = [
        (l0, t0, float(s0.mean()), e0),
        (l1, t1, float(s1.mean()), e1),
    ]
    print(
        format_table(
            ["run", "time (s)", "avg power (W)", "energy (J)"],
            rows,
            title="The paper's Figure 4 effect: more watts, fewer joules",
            float_fmt="{:.2f}",
        )
    )
    print(
        f"\nLB draws {s1.mean() - s0.mean():+.1f}W on average yet saves "
        f"{e0 - e1:.1f}J ({100 * (e0 - e1) / e0:.0f}%) because the run is "
        f"{t0 - t1:.2f}s shorter and base power never sleeps."
    )


if __name__ == "__main__":
    main()

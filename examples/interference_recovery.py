#!/usr/bin/env python
"""Interference recovery, visualised (the paper's Figure 3 story).

A Wave2D run on 4 cores with the interference-aware balancer enabled. A
noisy neighbour appears on core 1, leaves, then reappears on core 3;
after each change, the balancer migrates objects and the per-iteration
time recovers. The script prints ASCII Projections-style timelines for
each of the five phases plus the object-count trajectory.

Run:  python examples/interference_recovery.py
"""

from repro.experiments import fig3


def main() -> None:
    result = fig3(scale=0.5, lb_period=4)
    print(result.text())
    print()
    print("Iteration time trajectory (ms):")
    line = []
    for i, t in enumerate(result.iteration_times):
        line.append(f"{t * 1000:6.1f}")
        if (i + 1) % 10 == 0:
            print(" ".join(line))
            line = []
    if line:
        print(" ".join(line))
    print()
    a, b, c, d, e = result.phase_mean_iteration
    print(
        f"Recovery: interference on core1 cost {a / c:.2f}x; after "
        f"balancing {b / c:.2f}x. On core3: {d / c:.2f}x -> {e / c:.2f}x."
    )


if __name__ == "__main__":
    main()

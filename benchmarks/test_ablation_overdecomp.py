"""ABL-ODF — overdecomposition factor vs. achievable balance.

Charm++'s premise: "the number of objects needs to be more than the
number of available processors". With one object per core (ODF 1) the
balancer has nothing it can move without simply swapping overload
around; finer grains let refinement approximate the continuous optimum.
"""

import pytest

from benchmarks.ablation_common import interference_run
from benchmarks.conftest import write_artifact
from repro.apps import Jacobi2D
from repro.core import RefineVMInterferenceLB
from repro.experiments import format_table

ODFS = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for odf in ODFS:
        app = Jacobi2D(grid_size=2048, odf=odf, jitter_amp=0.0)
        res = interference_run(RefineVMInterferenceLB(0.05), app=app)
        results[odf] = (res.app_time, res.app.total_migrations)
    return results


def test_overdecomposition_sweep(sweep, benchmark):
    app = Jacobi2D(grid_size=2048, odf=8, jitter_amp=0.0)
    benchmark.pedantic(
        interference_run,
        args=(RefineVMInterferenceLB(0.05),),
        kwargs=dict(app=app),
        rounds=1,
        iterations=1,
    )
    rows = [(odf, t, m) for odf, (t, m) in sorted(sweep.items())]
    write_artifact(
        "ablation_overdecomp",
        format_table(
            ["chares per core", "app time (s)", "migrations"],
            rows,
            title="ABL-ODF — overdecomposition enables balance",
            float_fmt="{:.3f}",
        ),
    )


def test_finer_decomposition_balances_better(sweep):
    assert sweep[8][0] < sweep[1][0]


def test_diminishing_returns_by_odf8(sweep):
    # going 8 -> 16 buys little compared to 1 -> 8
    gain_1_to_8 = sweep[1][0] - sweep[8][0]
    gain_8_to_16 = sweep[8][0] - sweep[16][0]
    assert gain_8_to_16 < 0.5 * gain_1_to_8

"""ABL-EPS — sensitivity to ε, the Eq. (3) slack.

ε is "the deviation from the average load that the cloud operator is
willing to allow". Small ε chases perfect balance (more migrations, more
churn); large ε tolerates imbalance (cheaper, but converges to doing
nothing). The sweep quantifies the trade-off the paper leaves to the
operator.
"""

import pytest

from benchmarks.ablation_common import interference_run
from benchmarks.conftest import write_artifact
from repro.core import RefineVMInterferenceLB
from repro.experiments import format_table

EPSILONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for eps in EPSILONS:
        res = interference_run(RefineVMInterferenceLB(eps))
        results[eps] = (res.app_time, res.app.total_migrations)
    return results


def test_epsilon_sweep(sweep, benchmark):
    benchmark.pedantic(
        interference_run,
        args=(RefineVMInterferenceLB(0.05),),
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"{eps:.2f}", t, m) for eps, (t, m) in sorted(sweep.items())
    ]
    write_artifact(
        "ablation_epsilon",
        format_table(
            ["epsilon (frac of T_avg)", "app time (s)", "migrations"],
            rows,
            title="ABL-EPS — epsilon vs. run time and migration count",
            float_fmt="{:.3f}",
        ),
    )


def test_tight_epsilon_migrates_more(sweep):
    assert sweep[0.01][1] >= sweep[0.5][1]


def test_very_loose_epsilon_stops_balancing(sweep):
    # with |load - T_avg| allowed to reach T_avg itself, nothing is heavy
    assert sweep[1.0][1] == 0


def test_moderate_epsilon_beats_loose(sweep):
    assert sweep[0.05][0] < sweep[1.0][0]

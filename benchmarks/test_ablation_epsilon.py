"""ABL-EPS — sensitivity to ε, the Eq. (3) slack.

ε is "the deviation from the average load that the cloud operator is
willing to allow". Small ε chases perfect balance (more migrations, more
churn); large ε tolerates imbalance (cheaper, but converges to doing
nothing). The sweep quantifies the trade-off the paper leaves to the
operator.

Driven by the parallel sweep engine (:mod:`repro.experiments.sweep`):
the ε grid is a declarative one-axis spec executed through
:func:`run_sweep`, so it shares the scenario vocabulary, caching and
parallelism of every other sweep in the harness.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.experiments import format_table, run_sweep
from repro.experiments.sweep_presets import ablation_epsilon_spec

EPSILONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


@pytest.fixture(scope="module")
def sweep():
    result = run_sweep(ablation_epsilon_spec(EPSILONS))
    return {
        eps: result[f"epsilon={eps}"] for eps in EPSILONS
    }


def test_epsilon_sweep(sweep, benchmark):
    benchmark.pedantic(
        run_sweep,
        args=(ablation_epsilon_spec([0.05]),),
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"{eps:.2f}", s.app_time, s.total_migrations)
        for eps, s in sorted(sweep.items())
    ]
    write_artifact(
        "ablation_epsilon",
        format_table(
            ["epsilon (frac of T_avg)", "app time (s)", "migrations"],
            rows,
            title="ABL-EPS — epsilon vs. run time and migration count",
            float_fmt="{:.3f}",
        ),
    )


def test_tight_epsilon_migrates_more(sweep):
    assert sweep[0.01].total_migrations >= sweep[0.5].total_migrations


def test_very_loose_epsilon_stops_balancing(sweep):
    # with |load - T_avg| allowed to reach T_avg itself, nothing is heavy
    assert sweep[1.0].total_migrations == 0


def test_moderate_epsilon_beats_loose(sweep):
    assert sweep[0.05].app_time < sweep[1.0].app_time

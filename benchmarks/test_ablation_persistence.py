"""ABL-PERSIST — how fast can loads change before measurement-based
balancing breaks?

The paper's scheme assumes the *principle of persistence*: loads in the
next LB window resemble the measured window. The AMR2D application's
moving refinement front dials that assumption continuously: at
``front_speed`` strips/iteration, a front of width W strips decorrelates
after ~W/speed iterations. With an LB period of 5:

* speed 0 (static hotspot) — persistence is exact, balancing is free
  money;
* slow fronts — measurements stay valid within a window; the balancer
  tracks the front and keeps winning;
* fast fronts — by the time migrations land, the expensive strips are
  elsewhere; gains shrink toward (and can cross) zero once migration
  costs are counted.

This is the honest boundary of the paper's approach, quantified.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, write_artifact
from repro.apps import AMR2D
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.experiments import Scenario, format_table, run_scenario

SPEEDS = (0.0, 0.05, 0.2, 0.8, 3.2)


def amr_run(front_speed, balancer):
    app = AMR2D(
        grid_size=max(int(2048 * BENCH_SCALE), 256),
        odf=8,
        refinement=8.0,
        front_width_frac=0.2,
        front_speed=front_speed,
    )
    return run_scenario(
        Scenario(
            app=app,
            num_cores=16,
            iterations=100,
            balancer=balancer,
            policy=LBPolicy(period_iterations=5, decision_overhead_s=2e-4),
        )
    )


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for speed in SPEEDS:
        nolb = amr_run(speed, None)
        lb = amr_run(speed, RefineVMInterferenceLB(0.05))
        gain = 100.0 * (1.0 - lb.app_time / nolb.app_time)
        results[speed] = (nolb.app_time, lb.app_time, gain, lb.app.total_migrations)
    return results


def test_persistence_sweep(sweep, benchmark):
    benchmark.pedantic(
        amr_run, args=(0.05, RefineVMInterferenceLB(0.05)), rounds=1, iterations=1
    )
    rows = [
        (f"{speed:.2f}", nolb, lb, gain, m)
        for speed, (nolb, lb, gain, m) in sorted(sweep.items())
    ]
    write_artifact(
        "ablation_persistence",
        format_table(
            [
                "front speed (strips/iter)",
                "noLB time (s)",
                "LB time (s)",
                "LB gain %",
                "migrations",
            ],
            rows,
            title="ABL-PERSIST — the principle of persistence, stress-tested "
            "(AMR front, LB period 5)",
            float_fmt="{:.3f}",
        ),
    )


def test_static_hotspot_gains_most(sweep):
    gains = {s: g for s, (_, _, g, _) in sweep.items()}
    assert gains[0.0] > 25.0


def test_gain_degrades_with_front_speed(sweep):
    gains = {s: g for s, (_, _, g, _) in sweep.items()}
    assert gains[0.0] > gains[3.2]
    assert gains[0.05] > gains[0.8]


def test_slow_front_remains_profitable(sweep):
    gains = {s: g for s, (_, _, g, _) in sweep.items()}
    assert gains[0.05] > 15.0

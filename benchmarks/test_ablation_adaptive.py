"""ABL-ADAPTIVE — imbalance-triggered vs. periodic balancing.

Extension beyond the paper (MetaLB-style): interference arrives mid-run
(iteration 30 of 120). A slow periodic policy leaves the application
unbalanced until the next boundary; a fast periodic policy pays for many
no-op steps; the adaptive trigger fires right after the disturbance and
stays quiet otherwise.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, write_artifact
from repro.apps import Wave2D
from repro.cluster import Cluster, Interferer
from repro.core import AdaptiveLBPolicy, LBPolicy, RefineVMInterferenceLB
from repro.experiments import format_table
from repro.sim import SimulationEngine

HOG_AT = 30
ITERATIONS = 120


def run_policy(policy):
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=2, cores_per_node=4)
    app = Wave2D(grid_size=max(int(2048 * BENCH_SCALE), 64), jitter_amp=0.0)
    rt = app.instantiate(
        eng,
        cl,
        list(range(8)),
        balancer=RefineVMInterferenceLB(0.05),
        policy=policy,
    )
    hog = Interferer(eng, cl.core(2), start=None)
    rt.on_iteration(lambda r, it: hog.activate() if it == HOG_AT - 1 else None)
    rt.start(ITERATIONS)
    eng.run()
    return rt


@pytest.fixture(scope="module")
def lineup():
    return {
        "periodic/5": run_policy(
            LBPolicy(period_iterations=5, decision_overhead_s=2e-4)
        ),
        "periodic/25": run_policy(
            LBPolicy(period_iterations=25, decision_overhead_s=2e-4)
        ),
        "adaptive(1.25, hb 25)": run_policy(
            AdaptiveLBPolicy(
                period_iterations=25,
                imbalance_threshold=1.25,
                min_gap_iterations=2,
                decision_overhead_s=2e-4,
            )
        ),
    }


def test_adaptive_lineup(lineup, benchmark):
    benchmark.pedantic(
        run_policy,
        args=(AdaptiveLBPolicy(period_iterations=25, imbalance_threshold=1.25),),
        rounds=1,
        iterations=1,
    )
    rows = [
        (name, rt.finished_at, rt.lb_step_count, rt.migration_count)
        for name, rt in lineup.items()
    ]
    write_artifact(
        "ablation_adaptive",
        format_table(
            ["policy", "app time (s)", "LB steps", "migrations"],
            rows,
            title="ABL-ADAPTIVE — trigger on measured imbalance "
            f"(hog arrives at iteration {HOG_AT})",
            float_fmt="{:.3f}",
        ),
    )
    adaptive = lineup["adaptive(1.25, hb 25)"]
    fast = lineup["periodic/5"]
    slow = lineup["periodic/25"]
    # reacts like the fast policy...
    assert adaptive.finished_at <= fast.finished_at * 1.03
    # ...beats the slow one outright...
    assert adaptive.finished_at < slow.finished_at
    # ...with far fewer LB invocations than the fast one
    assert adaptive.lb_step_count < 0.5 * fast.lb_step_count

"""Shared fixtures for the benchmark harness.

The Figure 2 and Figure 4 benchmarks derive from the same run matrix
(exactly as in the paper, where both figures report the same runs), so
the matrix is built once per session.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — problem-size multiplier (default 1.0, the
  paper-scale grids/particle counts).
* ``REPRO_BENCH_ITERATIONS`` — application iterations per run (default
  200).

Each benchmark writes its regenerated table to ``results/<name>.txt`` in
the repository root so the artefacts survive pytest's output capture.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.figures import run_matrix

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "200"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_artifact(name: str, text: str) -> Path:
    """Persist a regenerated table/timeline and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def fig24_matrix():
    """The full Figure 2/4 run matrix (3 apps x 4 core counts x 5 runs)."""
    return run_matrix(scale=BENCH_SCALE, iterations=BENCH_ITERATIONS)

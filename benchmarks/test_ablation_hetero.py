"""ABL-HETERO — heterogeneous cloud hosts, with and without interference.

Cloud VMs land on hosts of mixed generations; a vCPU may simply be
slower. Because the LB database records *occupancy* (wall share), a slow
core makes its tasks look expensive — so measurement-based refinement
handles heterogeneity with no special casing. The interference-aware
term O_p is orthogonal: it covers cycles lost to *other tenants*.

Matrix: {homogeneous+BG, heterogeneous, heterogeneous+BG} x
{noLB, oblivious refine, Algorithm 1}. Expectations:

* heterogeneity alone: oblivious refinement already fixes it (measured
  times embed speed) — Algorithm 1 matches;
* heterogeneity + interference: only the interference-aware balancer
  fixes *both* (oblivious refinement re-balances occupancy but cannot
  see the co-tenant's share).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, write_artifact
from repro.apps import Jacobi2D, Wave2D
from repro.core import LBPolicy, RefineLB, RefineVMInterferenceLB
from repro.experiments import format_table
from repro.cluster.cluster import Cluster
from repro.sim import SimulationEngine

#: 16 cores: node 0 modern, node 1 mid, nodes 2-3 old-generation hosts
SPEEDS = [1.2] * 4 + [1.0] * 4 + [0.7] * 8


def hetero_run(balancer, *, with_bg: bool, speeds=None):
    engine = SimulationEngine()
    cluster = Cluster(engine, num_nodes=4, cores_per_node=4, core_speeds=speeds)
    grid = max(int(2048 * BENCH_SCALE), 256)
    app = Jacobi2D(grid_size=grid, jitter_amp=0.0).instantiate(
        engine,
        cluster,
        list(range(16)),
        balancer=balancer,
        policy=LBPolicy(period_iterations=5, decision_overhead_s=2e-4),
    )
    if with_bg:
        bg = Wave2D.background(grid_size=max(int(1448 * BENCH_SCALE), 64)).instantiate(
            engine, cluster, [8, 9], name="bg"
        )
        bg.start(iterations=1500)
    app.start(iterations=100)
    engine.run()
    assert app.done
    return app.finished_at


STRATEGIES = {
    "nolb": lambda: None,
    "refine (oblivious)": lambda: RefineLB(0.05),
    "Algorithm 1": lambda: RefineVMInterferenceLB(0.05),
}


@pytest.fixture(scope="module")
def matrix():
    cases = {
        "hetero": dict(with_bg=False, speeds=SPEEDS),
        "hetero + BG": dict(with_bg=True, speeds=SPEEDS),
    }
    out = {}
    for case_name, cfg in cases.items():
        for strat_name, factory in STRATEGIES.items():
            out[(case_name, strat_name)] = hetero_run(factory(), **cfg)
    return out


def test_hetero_matrix(matrix, benchmark):
    benchmark.pedantic(
        hetero_run,
        args=(RefineVMInterferenceLB(0.05),),
        kwargs=dict(with_bg=True, speeds=SPEEDS),
        rounds=1,
        iterations=1,
    )
    rows = [
        (case, strat, t) for (case, strat), t in sorted(matrix.items())
    ]
    write_artifact(
        "ablation_hetero",
        format_table(
            ["scenario", "strategy", "app time (s)"],
            rows,
            title="ABL-HETERO — mixed-generation hosts "
            "(speeds 1.2/1.0/0.7), optional BG job on slow cores 8-9",
            float_fmt="{:.3f}",
        ),
    )


def test_oblivious_refine_fixes_pure_heterogeneity(matrix):
    nolb = matrix[("hetero", "nolb")]
    refine = matrix[("hetero", "refine (oblivious)")]
    aware = matrix[("hetero", "Algorithm 1")]
    # measured occupancy embeds core speed, so plain refinement helps;
    # the margin is bounded by chare granularity (8 objects per core)
    assert refine < 0.97 * nolb
    assert aware == pytest.approx(refine, rel=0.10)


def test_only_aware_fixes_heterogeneity_plus_interference(matrix):
    nolb = matrix[("hetero + BG", "nolb")]
    refine = matrix[("hetero + BG", "refine (oblivious)")]
    aware = matrix[("hetero + BG", "Algorithm 1")]
    assert aware < 0.75 * nolb   # fixes both effects
    assert aware < 0.85 * refine  # oblivious cannot see the co-tenant
    assert refine < nolb          # ...but still fixes the speed skew

"""FIG3 — reproduce Figure 3: the balancer tracks moving interference.

Wave2D on 4 cores with the interference-aware balancer. Interference
appears on core 1, is balanced away, disappears (objects migrate back),
reappears on core 3, and is balanced away again — the paper's five
timeline panels (a)–(e).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, write_artifact
from repro.experiments import fig3


@pytest.fixture(scope="module")
def result():
    return fig3(scale=BENCH_SCALE, lb_period=4)


def test_fig3_regenerate(benchmark):
    res = benchmark.pedantic(
        fig3, kwargs=dict(scale=BENCH_SCALE, lb_period=4), rounds=1, iterations=1
    )
    write_artifact("fig3_dynamic_timeline", res.text())
    a, b, c, d, e = res.phase_mean_iteration
    assert b < 0.85 * a and e < 0.90 * d  # each rebalance helps
    o1, o3 = res.phase_objects_core1, res.phase_objects_core3
    assert o1[1] < o1[0] and o1[2] > o1[1] and o3[4] < o3[3]


def test_fig3_each_rebalance_restores_iteration_time(result):
    a, b, c, d, e = result.phase_mean_iteration
    assert b < 0.85 * a  # panel (b): balanced around core 1
    assert e < 0.90 * d  # panel (e): balanced around core 3
    assert c <= min(b, e) * 1.05  # panel (c): no interference at all


def test_fig3_objects_follow_the_interference(result):
    o1, o3 = result.phase_objects_core1, result.phase_objects_core3
    assert o1[1] < o1[0]  # drained off core 1
    assert o1[2] > o1[1]  # migrated back once the job left
    assert o3[4] < o3[3]  # drained off core 3


def test_fig3_renders_five_panels(result):
    text = result.text()
    for panel in ("a:", "b:", "c:", "d:", "e:"):
        assert panel in text

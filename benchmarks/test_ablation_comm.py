"""ABL-COMM — locality-preserving receiver choice on a cloud network.

Extension toward the paper's §VI concern with inferior cloud networks.
Both strategies implement Algorithm 1's load semantics and shed the same
work off the interfered cores; they differ only in *where* migrated
objects land:

* ``refine-vm-interference`` — least-loaded receiver (the paper);
* ``refine-vm-interference-comm`` — among feasible receivers, prefer the
  one hosting the object's recorded communication partners.

Under a placement-dependent communication model (per-chare halo graph,
virtualised network), keeping strip neighbours together keeps their halo
edges off the wire, so the comm-aware variant ends each iteration's
exchange sooner for the same CPU balance.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, write_artifact
from repro.apps import Jacobi2D
from repro.cluster import NetworkModel
from repro.core import CommAwareRefineLB, LBPolicy, RefineVMInterferenceLB
from repro.experiments import BackgroundSpec, Scenario, format_table, run_scenario
from repro.apps import Wave2D


def comm_heavy_run(balancer):
    """An interfered stencil run where halo traffic genuinely matters."""
    grid = max(int(2048 * BENCH_SCALE), 128)
    app = Jacobi2D(grid_size=grid, odf=8, jitter_amp=0.0)
    return run_scenario(
        Scenario(
            app=app,
            num_cores=8,
            iterations=100,
            balancer=balancer,
            policy=LBPolicy(period_iterations=5, decision_overhead_s=2e-4),
            bg=BackgroundSpec(
                model=Wave2D.background(grid_size=max(int(724 * BENCH_SCALE), 32)),
                core_ids=(0, 1),
                iterations=600,
            ),
            net=NetworkModel.virtualized(),
            use_comm_graph=True,
        )
    )


@pytest.fixture(scope="module")
def lineup():
    return {
        "refine (least-loaded recv)": comm_heavy_run(RefineVMInterferenceLB(0.05)),
        "refine (comm-aware recv)": comm_heavy_run(CommAwareRefineLB(0.05)),
    }


def test_comm_aware_lineup(lineup, benchmark):
    benchmark.pedantic(
        comm_heavy_run, args=(CommAwareRefineLB(0.05),), rounds=1, iterations=1
    )
    rows = [
        (name, res.app_time, res.app.total_migrations)
        for name, res in lineup.items()
    ]
    write_artifact(
        "ablation_comm",
        format_table(
            ["receiver policy", "app time (s)", "migrations"],
            rows,
            title="ABL-COMM — where migrated objects land "
            "(virtualised network, per-chare halo graph)",
            float_fmt="{:.3f}",
        ),
    )
    blind = lineup["refine (least-loaded recv)"].app_time
    aware = lineup["refine (comm-aware recv)"].app_time
    # locality must not hurt, and should measurably help
    assert aware <= blind * 1.001
    assert aware < blind * 0.99

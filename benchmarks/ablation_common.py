"""Shared helpers for the ablation benchmarks."""

from typing import Optional

from repro.core import LBPolicy
from repro.core.balancer import LoadBalancer
from repro.cluster.netmodel import NetworkModel
from repro.experiments import BackgroundSpec, Scenario, run_scenario
from repro.experiments.figures import _bg_model, _estimate_iteration_time, paper_app
from repro.experiments.runner import ExperimentResult


def interference_run(
    balancer: Optional[LoadBalancer],
    *,
    app_name: str = "jacobi2d",
    cores: int = 16,
    scale: float = 0.5,
    iterations: int = 100,
    lb_period: int = 5,
    bg_weight: float = 1.0,
    net: Optional[NetworkModel] = None,
    app=None,
) -> ExperimentResult:
    """One app-under-interference run with an arbitrary balancer.

    Mirrors the Figure-2 setup (2-core Wave2D background job on cores
    0-1, sized to outlast the run) but leaves the strategy free — that is
    the variable the ablations sweep.
    """
    net = net or NetworkModel.native()
    model = app if app is not None else paper_app(app_name, scale)
    bg = _bg_model(scale)
    app_est = _estimate_iteration_time(model, cores) * iterations
    bg_iter = _estimate_iteration_time(bg, 2)
    bg_iterations = max(int(1.2 * (1 + bg_weight) * app_est / bg_iter), 1)
    return run_scenario(
        Scenario(
            app=model,
            num_cores=cores,
            iterations=iterations,
            balancer=balancer,
            policy=LBPolicy(period_iterations=lb_period, decision_overhead_s=2e-4),
            bg=BackgroundSpec(
                model=bg, core_ids=(0, 1), iterations=bg_iterations, weight=bg_weight
            ),
            net=net,
        )
    )

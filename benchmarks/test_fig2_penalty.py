"""FIG2 — reproduce Figure 2: timing penalty with and without LB.

For each application (Jacobi2D, Wave2D, Mol3D) and core count
(8, 16, 24, 32): the application's timing penalty under a 2-core Wave2D
background job, the same with the interference-aware balancer, and the
background job's own penalties.

Shape assertions (the paper's qualitative findings):

* the balancer cuts the application penalty everywhere;
* the LB penalty falls as cores grow ("more cores to which the work of
  the overloaded core can be distributed");
* Mol3D's no-LB penalty is far larger (the OS favours the BG job there)
  while its BG penalty is far smaller;
* the balancer also relieves the background job for Jacobi2D/Wave2D.
"""

import pytest

from benchmarks.conftest import (
    BENCH_ITERATIONS,
    BENCH_SCALE,
    write_artifact,
)
from repro.experiments import fig2, run_case
from repro.experiments.figures import PAPER_CORE_COUNTS


def test_fig2_regenerate(fig24_matrix, benchmark):
    res = benchmark.pedantic(
        fig2, kwargs=dict(matrix=fig24_matrix), rounds=1, iterations=1
    )
    write_artifact("fig2_timing_penalty", res.text())
    by_app = {}
    for row in res.rows:
        by_app.setdefault(row.app_name, []).append(row)
    for app, rows in by_app.items():
        rows.sort(key=lambda r: r.cores)
        for r in rows:
            assert r.lb < r.nolb, f"{app} P={r.cores}: LB did not help"
        # LB penalty decreases with core count (allow small wiggle)
        lbs = [r.lb for r in rows]
        assert lbs[-1] < lbs[0], f"{app}: LB penalty did not fall with cores"


def test_fig2_mol3d_shows_os_preference(fig24_matrix):
    for cores in PAPER_CORE_COUNTS:
        mol = fig24_matrix[("mol3d", cores)]
        jac = fig24_matrix[("jacobi2d", cores)]
        assert mol.penalty_nolb > 1.5 * jac.penalty_nolb
        assert mol.bg_penalty_nolb < jac.bg_penalty_nolb


def test_fig2_bg_job_relieved_by_lb(fig24_matrix):
    for app in ("jacobi2d", "wave2d"):
        for cores in PAPER_CORE_COUNTS:
            case = fig24_matrix[(app, cores)]
            assert case.bg_penalty_lb < case.bg_penalty_nolb


def test_fig2_single_case_cost_jacobi32(benchmark):
    """Wall-clock cost of one full Figure-2 cell (5 simulated runs)."""
    benchmark.pedantic(
        run_case,
        args=("jacobi2d", 32),
        kwargs=dict(scale=BENCH_SCALE, iterations=BENCH_ITERATIONS),
        rounds=1,
        iterations=1,
    )

"""ABL-MIGCOST — the paper's §VI future work, evaluated.

"Due to the inferior performance of network, we also plan to explore a
strategy where load balancing decisions are performed every time a load
balancer is invoked, however, data migration is performed only if we
expect gains that can offset the cost of migration."

We sweep the chares' serialised state size on the degraded *virtualised*
network. Small objects: the gate lets everything through and matches the
raw balancer. Huge objects: migrating costs more than the remaining run
can repay, the gate suppresses migrations, and the gated balancer beats
the raw one.
"""

import pytest

from benchmarks.conftest import write_artifact
from benchmarks.ablation_common import interference_run
from repro.apps import SyntheticApp
from repro.cluster import NetworkModel
from repro.core import MigrationCostAwareLB, RefineVMInterferenceLB
from repro.experiments import format_table

STATE_SIZES = (4e3, 4e5, 4e7, 4e8)


def make_app(state_bytes):
    # 128 uniform chares (8 per core at 16 cores), scripted cost
    return SyntheticApp([0.004] * 128, state_bytes=state_bytes)


@pytest.fixture(scope="module")
def sweep():
    net = NetworkModel.virtualized()
    results = {}
    for size in STATE_SIZES:
        raw = interference_run(
            RefineVMInterferenceLB(0.05), app=make_app(size), net=net
        )
        gated_lb = MigrationCostAwareLB(
            RefineVMInterferenceLB(0.05), net, safety_factor=1.0
        )
        gated = interference_run(gated_lb, app=make_app(size), net=net)
        results[size] = (
            raw.app_time,
            gated.app_time,
            gated_lb.suppressed_steps,
            raw.app.total_migrations,
            gated.app.total_migrations,
        )
    return results


def test_migration_cost_sweep(sweep, benchmark):
    benchmark.pedantic(
        interference_run,
        args=(RefineVMInterferenceLB(0.05),),
        kwargs=dict(app=make_app(4e5), net=NetworkModel.virtualized()),
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"{int(size):.1e}", raw, gated, sup, m_raw, m_gated)
        for size, (raw, gated, sup, m_raw, m_gated) in sorted(sweep.items())
    ]
    write_artifact(
        "ablation_migration_cost",
        format_table(
            [
                "state bytes",
                "raw time (s)",
                "gated time (s)",
                "suppressed steps",
                "raw migrations",
                "gated migrations",
            ],
            rows,
            title="ABL-MIGCOST — gating migrations on predicted net gain "
            "(virtualised network)",
            float_fmt="{:.3f}",
        ),
    )


def test_small_objects_gate_is_transparent(sweep):
    raw, gated, suppressed, m_raw, m_gated = sweep[STATE_SIZES[0]]
    assert suppressed == 0
    assert gated == pytest.approx(raw, rel=0.05)
    assert m_gated == m_raw


def test_huge_objects_gate_suppresses_and_wins(sweep):
    raw, gated, suppressed, m_raw, m_gated = sweep[STATE_SIZES[-1]]
    assert suppressed > 0
    assert m_gated < m_raw
    assert gated < raw  # migrating 400MB objects over a cloud NIC loses

"""FIG4 — reproduce Figure 4: power draw and normalised energy overhead.

Same runs as Figure 2. The paper's findings:

* load-balanced runs draw *more average power* (idle time removed, higher
  CPU utilisation);
* yet consume *less energy* — the 40 W per-node base power makes the
  shorter runtime win;
* the balancer therefore cuts the interference *energy overhead* as well
  as the timing penalty.
"""

from benchmarks.conftest import write_artifact
from repro.experiments import fig4
from repro.experiments.figures import PAPER_CORE_COUNTS, paper_app_names


def test_fig4_regenerate(fig24_matrix, benchmark):
    res = benchmark.pedantic(
        fig4, kwargs=dict(matrix=fig24_matrix), rounds=1, iterations=1
    )
    write_artifact("fig4_power_energy", res.text())
    for row in res.rows:
        assert row.power_lb_w > row.power_nolb_w, (
            f"{row.app_name} P={row.cores}: balanced run should draw more power"
        )
        assert row.energy_overhead_lb < row.energy_overhead_nolb, (
            f"{row.app_name} P={row.cores}: balanced run should waste less energy"
        )


def test_fig4_lb_draws_more_power(fig24_matrix):
    for app in paper_app_names():
        for cores in PAPER_CORE_COUNTS:
            case = fig24_matrix[(app, cores)]
            assert case.power_lb_w > case.power_nolb_w, (
                f"{app} P={cores}: balanced run should draw more power"
            )


def test_fig4_lb_reduces_energy_overhead(fig24_matrix):
    for app in paper_app_names():
        for cores in PAPER_CORE_COUNTS:
            case = fig24_matrix[(app, cores)]
            assert case.energy_overhead_lb < case.energy_overhead_nolb, (
                f"{app} P={cores}: balanced run should waste less energy"
            )


def test_fig4_power_stays_within_model_bounds(fig24_matrix):
    for (app, cores), case in fig24_matrix.items():
        nodes = (cores + 3) // 4
        assert 40.0 * nodes <= case.power_nolb_w <= 170.0 * nodes
        assert 40.0 * nodes <= case.power_lb_w <= 170.0 * nodes

"""MICRO — substrate performance: event engine and shared-core model.

These set the simulator's capacity envelope (events/second), which is
what bounds how large a cluster/app the harness can sweep.
"""

from repro.sim import SharedCore, SimProcess, SimulationEngine


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost for 50k chained events."""

    def run():
        eng = SimulationEngine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                eng.schedule_after(0.001, tick)

        eng.schedule_after(0.001, tick)
        eng.run()
        return count[0]

    assert benchmark(run) == 50_000


def test_processor_sharing_rescheduling(benchmark):
    """Cost of 2k dispatches with interleaved completions on one core.

    Arrivals at ~60% core utilisation so the runnable set stays small —
    the regime the reproduction operates in (one app task + a couple of
    interferers per core), where rescheduling is O(set size).
    """

    def run():
        eng = SimulationEngine()
        core = SharedCore(eng, 0)
        done = [0]

        def count(_p):
            done[0] += 1

        for i in range(2000):
            proc = SimProcess(f"p{i}", 0.004 + (i % 7) * 0.0005, on_complete=count)
            eng.schedule_at(i * 0.01, core.dispatch, proc)
        eng.run()
        return done[0]

    assert benchmark(run) == 2000


def test_full_stack_simulation_rate(benchmark):
    """End-to-end: a 32-core, 256-chare app for 20 iterations."""
    from repro.apps import Jacobi2D
    from repro.cluster import Cluster, NetworkModel
    from repro.sim import SimulationEngine

    def run():
        eng = SimulationEngine()
        cl = Cluster(eng)
        rt = Jacobi2D(grid_size=1024).instantiate(
            eng, cl, list(range(32)), net=NetworkModel.native()
        )
        rt.start(iterations=20)
        eng.run()
        return rt.done

    assert benchmark(run)

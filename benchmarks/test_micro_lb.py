"""MICRO — decision cost of the balancing strategies themselves.

The paper runs Algorithm 1 centrally at every LB step; its cost must be
negligible next to an iteration. These benches measure pure decision
time on a paper-scale view (32 cores x 8 chares each) and a much larger
one (512 cores), showing the strategy scales beyond the testbed.
"""

import pytest

from repro.core import (
    CoreLoad,
    GreedyLB,
    LBView,
    RefineVMInterferenceLB,
    TaskRecord,
)


def make_view(num_cores, chares_per_core, interfered=2):
    cores = []
    for cid in range(num_cores):
        tasks = tuple(
            TaskRecord(
                chare=(f"a{cid}", i),
                cpu_time=0.01 + 0.001 * ((cid * 7 + i) % 5),
                state_bytes=1024.0,
            )
            for i in range(chares_per_core)
        )
        bg = 0.08 if cid < interfered else 0.0
        cores.append(CoreLoad(core_id=cid, tasks=tasks, bg_load=bg))
    return LBView(cores=tuple(cores), window=1.0)


@pytest.fixture(scope="module")
def paper_view():
    return make_view(32, 8)


@pytest.fixture(scope="module")
def large_view():
    return make_view(512, 8, interfered=32)


def test_algorithm1_decision_paper_scale(benchmark, paper_view):
    lb = RefineVMInterferenceLB(0.05)
    migrations = benchmark(lb.decide, paper_view)
    assert migrations  # the interfered cores shed work


def test_algorithm1_decision_512_cores(benchmark, large_view):
    lb = RefineVMInterferenceLB(0.05)
    migrations = benchmark(lb.decide, large_view)
    assert migrations


def test_greedy_decision_paper_scale(benchmark, paper_view):
    lb = GreedyLB(aware=True)
    migrations = benchmark(lb.decide, paper_view)
    assert migrations


def test_database_view_construction(benchmark):
    """Building the LBView from runtime counters (per LB step cost)."""
    from repro.core import LBDatabase
    from repro.sim import SharedCore, SimulationEngine
    from repro.sim.procstat import ProcStat

    eng = SimulationEngine()
    cores = {i: SharedCore(eng, i) for i in range(32)}
    stat = ProcStat(cores, owner="app")
    db = LBDatabase(stat)
    mapping = {}
    for cid in range(32):
        for i in range(8):
            key = ("grid", cid * 8 + i)
            mapping[key] = cid
            db.record_task(key, 0.01)
    view = benchmark(db.build_view, mapping)
    assert view.num_cores == 32

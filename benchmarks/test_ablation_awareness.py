"""ABL-AWARE — the paper's actual delta: including O_p in the load model.

Strategy line-up under identical interference:

* NoLB — static mapping (paper's baseline);
* RefineLB — classic refinement, task times only (what Charm++ had);
* GreedyLB — from-scratch greedy, task times only;
* GreedyLB(aware) — greedy seeded with background loads;
* RefineVMInterferenceLB — the paper's Algorithm 1.

Findings (see results/ablation_awareness.txt):

* oblivious refinement is inert — a uniformly decomposed app is already
  internally balanced, so task times alone show nothing to fix;
* greedy strategies reshuffle the whole mapping every step; the
  migration churn costs more than the interference itself, even for the
  aware variant — precisely the paper's stated advantage ("a refined
  load balancing algorithm that achieves load balance while minimizing
  task migrations") over rebuild-style schemes like Brunner & Kalé's;
* the paper's Algorithm 1 is the only strategy that beats noLB here.
"""

import pytest

from benchmarks.ablation_common import interference_run
from benchmarks.conftest import write_artifact
from repro.core import GreedyLB, NoLB, RefineLB, RefineVMInterferenceLB
from repro.experiments import format_table


@pytest.fixture(scope="module")
def lineup():
    strategies = {
        "nolb": NoLB(),
        "refine (oblivious)": RefineLB(0.05),
        "greedy (oblivious)": GreedyLB(),
        "greedy (aware)": GreedyLB(aware=True),
        "refine-vm-interference": RefineVMInterferenceLB(0.05),
    }
    return {
        name: interference_run(strategy)
        for name, strategy in strategies.items()
    }


def test_awareness_lineup(lineup, benchmark):
    benchmark.pedantic(
        interference_run, args=(RefineVMInterferenceLB(0.05),), rounds=1, iterations=1
    )
    rows = [
        (name, res.app_time, res.app.total_migrations)
        for name, res in lineup.items()
    ]
    write_artifact(
        "ablation_awareness",
        format_table(
            ["strategy", "app time (s)", "migrations"],
            rows,
            title="ABL-AWARE — interference awareness is the paper's delta",
            float_fmt="{:.3f}",
        ),
    )


def test_aware_refine_beats_oblivious_refine(lineup):
    assert (
        lineup["refine-vm-interference"].app_time
        < 0.9 * lineup["refine (oblivious)"].app_time
    )


def test_oblivious_refine_is_inert(lineup):
    # on an internally balanced app, a task-time-only refiner sees nothing
    # to fix: within a few percent of the static mapping
    nolb = lineup["nolb"].app_time
    assert lineup["refine (oblivious)"].app_time == pytest.approx(nolb, rel=0.10)
    assert lineup["refine (oblivious)"].app.total_migrations == 0


def test_greedy_churn_is_ruinous(lineup):
    """The paper's point against rebuild-style balancing, quantified.

    Greedy recomputes the whole mapping every step; even the aware
    variant re-shuffles hundreds of objects whose transfer costs dwarf
    the imbalance it fixes. Refinement gets the same balance with two
    orders of magnitude fewer migrations.
    """
    refine = lineup["refine-vm-interference"]
    for name in ("greedy (oblivious)", "greedy (aware)"):
        greedy = lineup[name]
        assert greedy.app.total_migrations > 20 * refine.app.total_migrations
        # churn costs more wall-clock than the interference itself
        assert greedy.app_time > lineup["nolb"].app_time


def test_paper_scheme_is_best_or_tied(lineup):
    best = min(res.app_time for res in lineup.values())
    assert lineup["refine-vm-interference"].app_time <= best * 1.05

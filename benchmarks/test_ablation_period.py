"""ABL-PERIOD — load-balancing period vs. reaction time and overhead.

The paper balances periodically; the period trades instrumentation
window quality and LB overhead against reaction latency. A long period
leaves the application unbalanced for longer after interference arrives.
"""

import pytest

from benchmarks.ablation_common import interference_run
from benchmarks.conftest import write_artifact
from repro.core import RefineVMInterferenceLB
from repro.experiments import format_table

PERIODS = (2, 5, 10, 25, 50)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for period in PERIODS:
        res = interference_run(
            RefineVMInterferenceLB(0.05), lb_period=period, iterations=100
        )
        results[period] = (res.app_time, res.app.lb_steps, res.app.total_migrations)
    return results


def test_period_sweep(sweep, benchmark):
    benchmark.pedantic(
        interference_run,
        args=(RefineVMInterferenceLB(0.05),),
        kwargs=dict(lb_period=10, iterations=100),
        rounds=1,
        iterations=1,
    )
    rows = [(p, t, s, m) for p, (t, s, m) in sorted(sweep.items())]
    write_artifact(
        "ablation_period",
        format_table(
            ["period (iters)", "app time (s)", "LB steps", "migrations"],
            rows,
            title="ABL-PERIOD — balancing cadence vs. run time",
            float_fmt="{:.3f}",
        ),
    )


def test_moderate_period_is_the_sweet_spot(sweep):
    # too slow reacts late; too fast churns (decision overhead + repeated
    # migrations on freshly-measured noise)
    assert sweep[5][0] < sweep[50][0]
    assert sweep[5][0] < sweep[2][0]


def test_step_counts_follow_period(sweep):
    assert sweep[2][1] > sweep[10][1] > sweep[50][1]

"""ABL-PERIOD — load-balancing period vs. reaction time and overhead.

The paper balances periodically; the period trades instrumentation
window quality and LB overhead against reaction latency. A long period
leaves the application unbalanced for longer after interference arrives.

Driven by the parallel sweep engine (:mod:`repro.experiments.sweep`):
the period grid is a declarative one-axis spec executed through
:func:`run_sweep`.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.experiments import format_table, run_sweep
from repro.experiments.sweep_presets import ablation_period_spec

PERIODS = (2, 5, 10, 25, 50)


@pytest.fixture(scope="module")
def sweep():
    result = run_sweep(ablation_period_spec(PERIODS))
    return {p: result[f"lb_period={p}"] for p in PERIODS}


def test_period_sweep(sweep, benchmark):
    benchmark.pedantic(
        run_sweep,
        args=(ablation_period_spec([10]),),
        rounds=1,
        iterations=1,
    )
    rows = [
        (p, s.app_time, s.lb_steps, s.total_migrations)
        for p, s in sorted(sweep.items())
    ]
    write_artifact(
        "ablation_period",
        format_table(
            ["period (iters)", "app time (s)", "LB steps", "migrations"],
            rows,
            title="ABL-PERIOD — balancing cadence vs. run time",
            float_fmt="{:.3f}",
        ),
    )


def test_moderate_period_is_the_sweet_spot(sweep):
    # too slow reacts late; too fast churns (decision overhead + repeated
    # migrations on freshly-measured noise)
    assert sweep[5].app_time < sweep[50].app_time
    assert sweep[5].app_time < sweep[2].app_time


def test_step_counts_follow_period(sweep):
    assert sweep[2].lb_steps > sweep[10].lb_steps > sweep[50].lb_steps

"""FIG1 — reproduce Figure 1: a background task disturbs load balance.

Wave2D on 4 cores of one node, no load balancing; a 1-core job of the
same application appears on the last core after a few iterations. The
paper's observation: the interfered iteration is much longer, the tasks
on the interfered core stretch, and the other cores show idle time.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, write_artifact
from repro.experiments import fig1


@pytest.fixture(scope="module")
def result():
    return fig1(scale=BENCH_SCALE, iterations=12, start_after=4)


def test_fig1_regenerate(benchmark):
    res = benchmark.pedantic(
        fig1,
        kwargs=dict(scale=BENCH_SCALE, iterations=12, start_after=4),
        rounds=1,
        iterations=1,
    )
    write_artifact("fig1_timeline", res.text())
    # fair 1:1 sharing on the interfered core: ~2x iteration stretch
    assert res.stretch_factor == pytest.approx(2.0, rel=0.15)


def test_fig1_interfered_iteration_about_twice_as_long(result):
    # fair 1:1 CPU sharing on the interfered core
    assert result.stretch_factor == pytest.approx(2.0, rel=0.15)


def test_fig1_clean_cores_idle_while_interfered_core_never_is(result):
    lines = result.rendering_interfered.splitlines()
    for clean in lines[1:4]:
        assert "." in clean
    assert "." not in lines[4].split("|")[1]

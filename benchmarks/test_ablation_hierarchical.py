"""ABL-HIER — migration locality: flat vs. hierarchical destinations.

Extension toward Charm++'s hierarchical balancers. The hierarchical
variant wraps flat Algorithm 1 and redirects each migration into the
donor's own node whenever a feasible receiver exists there; intra-node
transfers move through shared memory, which the runtime discounts by
``local_comm_factor``.

Two scenarios, two findings:

* **internal imbalance** (Mol3D's drifting density, no interference):
  refinement repeatedly shuffles moderate amounts of work; most shuffles
  can stay inside a node, so the hierarchical variant achieves the same
  balance with materially cheaper LB steps.
* **interference drain** (the paper's BG-job setup): the point of the
  migrations is to *escape* the interfered node; local receivers saturate
  after the first step and later transfers must cross anyway, so locality
  preference neither helps nor hurts much. The assertion pins this
  neutrality so the trade-off stays documented.
"""

import pytest

from benchmarks.ablation_common import interference_run
from benchmarks.conftest import BENCH_SCALE, write_artifact
from repro.apps import Mol3D
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.core.hierarchical import HierarchicalLB
from repro.experiments import Scenario, format_table, run_scenario


def internal_imbalance_run(balancer):
    """Mol3D with strong, drifting density imbalance; no interference."""
    app = Mol3D(
        total_particles=max(int(24_000 * BENCH_SCALE), 2048),
        density_cv=0.6,
        seed=3,
        drift_amp=0.1,
        drift_period=40,
    )
    return run_scenario(
        Scenario(
            app=app,
            num_cores=16,
            iterations=100,
            balancer=balancer,
            policy=LBPolicy(period_iterations=5, decision_overhead_s=2e-4),
        )
    )


@pytest.fixture(scope="module")
def lineup():
    return {
        "flat Algorithm 1": internal_imbalance_run(RefineVMInterferenceLB(0.05)),
        "hierarchical (by node)": internal_imbalance_run(
            HierarchicalLB.by_node(4, inner=RefineVMInterferenceLB(0.05))
        ),
        "noLB": internal_imbalance_run(None),
    }


def test_hierarchical_lineup(lineup, benchmark):
    benchmark.pedantic(
        internal_imbalance_run,
        args=(HierarchicalLB.by_node(4),),
        rounds=1,
        iterations=1,
    )
    rows = [
        (name, res.app_time, res.app.total_migrations,
         res.app.total_migration_cost_s * 1000)
        for name, res in lineup.items()
    ]
    write_artifact(
        "ablation_hierarchical",
        format_table(
            ["strategy", "app time (s)", "migrations", "migration cost (ms)"],
            rows,
            title="ABL-HIER — locality-preferring destinations on internal "
            "(density) imbalance, 16 cores / 4 nodes",
            float_fmt="{:.3f}",
        ),
    )


def test_hierarchical_cuts_migration_cost(lineup):
    flat = lineup["flat Algorithm 1"]
    hier = lineup["hierarchical (by node)"]
    assert (
        hier.app.total_migration_cost_s < 0.8 * flat.app.total_migration_cost_s
    )


def test_hierarchical_matches_flat_balance(lineup):
    flat = lineup["flat Algorithm 1"]
    hier = lineup["hierarchical (by node)"]
    assert hier.app_time <= flat.app_time * 1.03
    assert hier.app_time < lineup["noLB"].app_time


def test_locality_is_neutral_for_interference_drain():
    """Draining an interfered node cannot stay local — documented limit."""
    flat = interference_run(RefineVMInterferenceLB(0.05))
    hier = interference_run(
        HierarchicalLB.by_node(4, inner=RefineVMInterferenceLB(0.05))
    )
    assert hier.app_time <= flat.app_time * 1.10

"""HEADLINE — the paper's abstract claim.

"We demonstrate that our scheme reduces the timing penalty and energy
overhead associated with interfering jobs by at least 5%." (Abstract;
restated in §VI as "more than 5% compared to the case where there is no
load balancing".) Our reproduction typically exceeds the claim by an
order of magnitude at the larger core counts.
"""

from benchmarks.conftest import write_artifact
from repro.experiments import format_table, headline_reductions
from repro.experiments.figures import PAPER_CLAIM_PERCENT


def test_headline_reductions(fig24_matrix, benchmark):
    rows = benchmark.pedantic(
        headline_reductions, args=(fig24_matrix,), rounds=1, iterations=1
    )
    text = format_table(
        ["app", "min penalty reduction %", "min energy reduction %", "claim met"],
        [
            (r.app_name, r.min_penalty_reduction, r.min_energy_reduction, r.meets_claim)
            for r in rows
        ],
        title=(
            "Headline — worst-case reduction across core counts "
            f"(paper claims >= {PAPER_CLAIM_PERCENT:.0f}%)"
        ),
    )
    write_artifact("headline_claim", text)
    assert len(rows) == 3
    for row in rows:
        assert row.meets_claim, f"{row.app_name} misses the paper's claim"
